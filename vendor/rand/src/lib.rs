//! Vendored, offline re-implementation of the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the small slice of `rand` it needs: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, integer/float/bool sampling, and
//! [`seq::SliceRandom::shuffle`]. The trait names, method names and semantics
//! match rand 0.8 closely enough that swapping the real crate back in is a
//! one-line `Cargo.toml` change.

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Raw seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the same
    /// PCG32-based sequence rand_core 0.6 uses, so seeded streams match the
    /// real `rand`/`rand_chacha` crates bit for bit.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            // Advance the state first, in case the input has low Hamming
            // weight, then apply the PCG output function.
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state));
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the full value range by
/// `Rng::gen` (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand 0.8.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can sample from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`; `high > low` is required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; `high >= low` is required.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = sample_below(rng, span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high + f64::EPSILON * high.abs().max(1.0))
    }
}

/// Unbiased sample from `[0, span)` by rejection; `span > 0`.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if span.is_power_of_two() {
        if let Ok(mask) = u64::try_from(span - 1) {
            // One u64 draw covers the whole span; masking a power of two
            // is exact, so no rejection and no second word are needed.
            return u128::from(rng.next_u64() & mask);
        }
        return u128::sample_standard(rng) & (span - 1);
    }
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = u128::sample_standard(rng);
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value via the `Standard` distribution (full value range;
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // Integer form of `f64::sample_standard(self) < p`: with
        // y = next_u64 >> 11, the sampled float y * 2^-53 is exact (a
        // power-of-two scaling of an integer below 2^53), so the comparison
        // y * 2^-53 < p holds iff y < ceil(p * 2^53) — and p * 2^53 is
        // itself exact for p in [0, 1]. Same draw, same outcome, but the
        // threshold is a loop-hoistable constant when p is invariant.
        let threshold = (p * (1u64 << 53) as f64).ceil() as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// Fills `dest` with random data (byte slices only in this subset).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic generator (xoshiro256**), offered
    /// under the name rand 0.8 gives its default seeded generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro forbids the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    fn rng() -> rngs::StdRng {
        rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = rng();
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
