//! Vendored offline implementation of `rand_chacha::ChaCha8Rng`.
//!
//! A genuine ChaCha stream cipher core (Bernstein) with 8 rounds, driven as a
//! deterministic random number generator through the workspace's vendored
//! `rand` traits. Seeded output is stable across platforms and runs, which is
//! all the test and benchmark suites rely on.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word of `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the 8-round ChaCha core to refill the keystream buffer, then
    /// advances the 64-bit block counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 4 double-rounds = 8 rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        self.index = 0;
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..13 are the block counter; 14..15 the (zero) nonce.
        Self {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let v: usize = rng.gen_range(0..10);
        assert!(v < 10);
        let _: bool = rng.gen();
    }

    #[test]
    fn keystream_marches_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        // 64 words = 4 blocks; consecutive blocks must differ.
        assert_ne!(&first[0..16], &first[16..32]);
    }
}
