//! Vendored offline implementation of `rand_chacha::ChaCha8Rng`.
//!
//! A genuine ChaCha stream cipher core (Bernstein) with 8 rounds, driven as a
//! deterministic random number generator through the workspace's vendored
//! `rand` traits. Seeded output is stable across platforms and runs, which is
//! all the test and benchmark suites rely on.
//!
//! The keystream is buffered four blocks at a time: the ChaCha core has a
//! serial dependency chain inside one block, so computing four consecutive
//! counter blocks in lockstep (lane-sliced `[u32; LANES]` state words) keeps
//! the pipeline full and lets the compiler vectorize the quarter rounds. The
//! emitted word sequence is bit-identical to refilling one block at a time —
//! only the buffering granularity changes.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// Counter blocks generated per refill.
const LANES: usize = 16;
const BUFFER_WORDS: usize = BLOCK_WORDS * LANES;

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream window: [`LANES`] consecutive counter blocks.
    buffer: [u32; BUFFER_WORDS],
    /// Next unread word of `buffer`; `BUFFER_WORDS` means exhausted.
    index: usize,
}

/// A word of the working state across all lanes, as whole-vector ops —
/// element-wise array expressions the backend lowers to SIMD adds, xors
/// and shift pairs.
type Lanes = [u32; LANES];

#[inline(always)]
fn add(a: Lanes, b: Lanes) -> Lanes {
    let mut out = [0u32; LANES];
    for l in 0..LANES {
        out[l] = a[l].wrapping_add(b[l]);
    }
    out
}

#[inline(always)]
fn xor_rotl<const R: u32>(a: Lanes, b: Lanes) -> Lanes {
    let mut out = [0u32; LANES];
    for l in 0..LANES {
        out[l] = (a[l] ^ b[l]).rotate_left(R);
    }
    out
}

/// One quarter round across all lanes at once.
#[inline(always)]
fn quarter_round(s: &mut [Lanes; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = add(s[a], s[b]);
    s[d] = xor_rotl::<16>(s[d], s[a]);
    s[c] = add(s[c], s[d]);
    s[b] = xor_rotl::<12>(s[b], s[c]);
    s[a] = add(s[a], s[b]);
    s[d] = xor_rotl::<8>(s[d], s[a]);
    s[c] = add(s[c], s[d]);
    s[b] = xor_rotl::<7>(s[b], s[c]);
}

impl ChaCha8Rng {
    /// Runs the 8-round ChaCha core over [`LANES`] consecutive counter
    /// values to refill the keystream buffer, then advances the 64-bit
    /// block counter past them.
    fn refill(&mut self) {
        // Lane l simulates the block at counter + l; the 64-bit counter
        // lives little-endian in state words 12 (low) and 13 (high).
        let counter = (u64::from(self.state[13]) << 32) | u64::from(self.state[12]);
        let mut working = [[0u32; LANES]; BLOCK_WORDS];
        for (w, &s) in working.iter_mut().zip(self.state.iter()) {
            *w = [s; LANES];
        }
        for l in 0..LANES {
            let ctr = counter.wrapping_add(l as u64);
            working[12][l] = ctr as u32;
            working[13][l] = (ctr >> 32) as u32;
        }
        let input = working;
        for _ in 0..4 {
            // 4 double-rounds = 8 rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for l in 0..LANES {
            for w in 0..BLOCK_WORDS {
                self.buffer[l * BLOCK_WORDS + w] = working[w][l].wrapping_add(input[w][l]);
            }
        }
        self.index = 0;
        let next = counter.wrapping_add(LANES as u64);
        self.state[12] = next as u32;
        self.state[13] = (next >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..13 are the block counter; 14..15 the (zero) nonce.
        Self {
            state,
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both halves are already buffered.
        if self.index + 2 <= BUFFER_WORDS {
            let lo = u64::from(self.buffer[self.index]);
            let hi = u64::from(self.buffer[self.index + 1]);
            self.index += 2;
            return (hi << 32) | lo;
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let v: usize = rng.gen_range(0..10);
        assert!(v < 10);
        let _: bool = rng.gen();
    }

    #[test]
    fn keystream_marches_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        // 64 words = 4 blocks; consecutive blocks must differ.
        assert_ne!(&first[0..16], &first[16..32]);
    }

    /// The batched refill and the `next_u64` fast path must reproduce the
    /// exact historical keystream: these words were emitted by the original
    /// one-block-at-a-time implementation. Three access patterns per seed —
    /// pure u32, pure u64, and a mixed interleaving that lands `next_u64`
    /// calls on odd buffer offsets and refill boundaries.
    #[test]
    fn keystream_is_pinned_across_buffering_changes() {
        let golden_u32: [(u64, [u32; 8]); 3] = [
            (
                0,
                [
                    2811902828, 3045455719, 3134767159, 2001118559, 2179114726, 3002797362,
                    2409334908, 258433188,
                ],
            ),
            (
                42,
                [
                    962419617, 2928721845, 628724104, 4081401798, 3317060492, 1836168968,
                    1477863250, 2694492921,
                ],
            ),
            (
                u64::MAX,
                [
                    3819388078, 2938119046, 2545823192, 1839259395, 106437596, 1635475236,
                    2575672727, 1859133944,
                ],
            ),
        ];
        for (seed, expected) in golden_u32 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let got: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
            assert_eq!(got, expected, "u32 keystream for seed {seed}");
        }

        // Word 40 of seed 0 sits in the third block; drawing u64s past it
        // crosses the four-block refill boundary (words 64..).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w64: Vec<u64> = (0..9).map(|_| rng.next_u64()).collect();
        assert_eq!(
            w64,
            [
                13080132717333068652,
                8594738769458413623,
                12896916468484187878,
                1109962093070354556,
                16216730426637698681,
                10137062675859812541,
                15292064470292927036,
                17255573299003615418,
                14827154245325219424,
            ]
        );

        // One u32 then u64s: every u64 read starts at an odd word offset,
        // exercising the straddled slow path at each block boundary.
        let mut rng = ChaCha8Rng::seed_from_u64(3735928559);
        let mut mixed: Vec<u64> = Vec::new();
        for i in 0..25 {
            if i % 3 == 0 {
                mixed.push(rng.next_u32() as u64);
            } else {
                mixed.push(rng.next_u64());
            }
        }
        assert_eq!(
            mixed,
            [
                1139576313,
                3297114159669391487,
                14278743177474825413,
                25162334,
                4650010346337213241,
                12484079701440771534,
                2172356607,
                10465336528696436182,
                5779633268080302685,
                1944555713,
                3800408309596585055,
                9948106927107291749,
                2214332408,
                10775068754180821070,
                13542924405293158199,
                1887572495,
                17853776427767617180,
                11839904867050240339,
                2834569046,
                12450753013576827911,
                6067213356068190466,
                2030184495,
                9509712221521477227,
                3364966512161736805,
                2509158201,
            ]
        );
    }
}
