//! Vendored, offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace ships a
//! small wall-clock harness under the `criterion` name. It implements the
//! types and macros the benches use — [`Criterion`], benchmark groups,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`criterion_group!`],
//! [`criterion_main!`] — measures median iteration time over the configured
//! samples, and prints one line per benchmark. Statistical analysis, plots
//! and comparison against saved baselines are out of scope.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object (one per line) with its
//! name, median iteration time and throughput, so CI can collect the
//! medians as a machine-readable artifact.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let config = self.clone();
        run_one(&config, &id.to_string(), None, &mut f);
    }
}

/// Throughput annotation attached to a group, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration, reported in decimal units.
    BytesDecimal(u64),
}

/// Identifier of one benchmark within a group: a function name plus the
/// parameter it was run at.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override; the parent `Criterion` is left untouched.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in the report.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// The parent configuration with this group's overrides applied.
    fn config(&self) -> Criterion {
        let mut config = self.criterion.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        config
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.config(), &full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a function by name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.config(), &full, self.throughput, &mut f);
        self
    }

    /// Finishes the group (report flushing is per-line, so this is a no-op).
    pub fn finish(self) {}
}

/// Timer handle passed to every benchmark closure.
pub struct Bencher {
    /// Samples recorded by `iter`, as (iterations, elapsed) pairs.
    samples: Vec<(u64, Duration)>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then recording the configured
    /// number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring the cost
        // of one iteration to size the samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Aim for measurement_time split across sample_size samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((iters_per_sample, start.elapsed()));
        }
    }
}

fn run_one(
    config: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: config.sample_size,
        measurement_time: config.measurement_time,
        warm_up_time: config.warm_up_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(iters, d)| d.as_secs_f64() / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!("{name:<60} median {}{extra}", format_time(median));
    emit_json_line(name, median, throughput);
}

/// Appends the benchmark's median as a JSON line to the file named by the
/// `CRITERION_JSON` environment variable (no-op when unset or empty). Each
/// line is `{"name":…,"median_ns":…,"throughput_per_sec":…|null}`; failures
/// to open or write the file are deliberately silent so a bad path can never
/// fail a bench run.
fn emit_json_line(name: &str, median_secs: f64, throughput: Option<Throughput>) {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    write_json_line(std::path::Path::new(&path), name, median_secs, throughput);
}

/// Renders and appends one benchmark's JSON line to `path` (see
/// [`emit_json_line`] for the format and the silent-failure policy).
fn write_json_line(
    path: &std::path::Path,
    name: &str,
    median_secs: f64,
    throughput: Option<Throughput>,
) {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let per_sec = match throughput {
        Some(Throughput::Elements(n) | Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("{}", n as f64 / median_secs)
        }
        None => "null".to_string(),
    };
    let line = format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{},\"throughput_per_sec\":{per_sec}}}",
        median_secs * 1e9
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(file, "{line}");
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>9.3} µs", secs * 1e6)
    } else {
        format!("{:>9.3} ns", secs * 1e9)
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>());
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn json_lines_are_appended_and_escaped() {
        // Exercise the writer directly with an explicit path — mutating the
        // process-global CRITERION_JSON variable here would race with other
        // tests in this binary that run benchmarks.
        let path =
            std::env::temp_dir().join(format!("criterion_json_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        write_json_line(
            &path,
            "group/\"quoted\"/4",
            2.5e-6,
            Some(Throughput::Elements(10)),
        );
        write_json_line(&path, "group/plain/8", 1e-3, None);
        let text = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let expected = format!(
            "{{\"name\":\"group/\\\"quoted\\\"/4\",\"median_ns\":{},\"throughput_per_sec\":{}}}",
            2.5e-6f64 * 1e9,
            10f64 / 2.5e-6
        );
        assert_eq!(lines[0], expected);
        assert!(lines[1].ends_with("\"throughput_per_sec\":null}"));
    }
}
