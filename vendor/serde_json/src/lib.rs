//! Vendored, offline `serde_json` subset: renders the vendored
//! [`serde::Value`] data model to JSON text and parses it back.
//!
//! Supports exactly the JSON that derived `Serialize` impls can emit:
//! `null`, booleans, integers, finite floats, strings (with escapes),
//! arrays, and objects.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Rust's shortest-round-trip formatting; force a fractional part
            // so the value parses back as a float.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    /// Reads four hex digits starting at `at` (does not advance `pos`).
    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("bad \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow (RFC 8259 §7).
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    let lo = self.read_hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(Error::custom("unpaired high surrogate"));
                                    }
                                    self.pos += 6;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::custom("unpaired high surrogate"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&hi) {
                                return Err(Error::custom("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
                // Negative magnitude beyond i64: fall through to f64, as
                // real serde_json does.
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\\z\n".into())),
            ("d".into(), Value::F64(0.25)),
            ("e".into(), Value::I64(-3)),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&v, &mut s).unwrap();
            s
        };
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u32, 5, 9];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,5,9]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct SkippyTuple(u32, #[serde(skip)] u8, u32);

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    enum Mixed {
        Unit,
        Pair(u32, #[serde(skip)] u8, bool),
        Named {
            a: u32,
            #[serde(skip)]
            b: u8,
        },
    }

    #[test]
    fn skip_fields_round_trip_with_defaults() {
        let t = SkippyTuple(7, 9, 11);
        let json = to_string(&t).unwrap();
        assert_eq!(json, "[7,11]");
        assert_eq!(
            from_str::<SkippyTuple>(&json).unwrap(),
            SkippyTuple(7, 0, 11)
        );

        for (v, expect_back) in [
            (Mixed::Unit, Mixed::Unit),
            (Mixed::Pair(1, 2, true), Mixed::Pair(1, 0, true)),
            (Mixed::Named { a: 3, b: 4 }, Mixed::Named { a: 3, b: 0 }),
        ] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<Mixed>(&json).unwrap(), expect_back);
        }
    }

    #[test]
    fn surrogate_pairs_parse_and_lone_surrogates_fail() {
        let escaped: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped, "😀");
        let literal: String = from_str(r#""😀""#).unwrap();
        assert_eq!(literal, "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }

    #[test]
    fn huge_negative_integers_fall_back_to_f64() {
        let v: f64 = from_str("-9223372036854775809").unwrap();
        assert_eq!(v, -(2f64.powi(63)));
        let i: i64 = from_str("-42").unwrap();
        assert_eq!(i, -42);
    }

    #[test]
    fn floats_keep_a_fractional_marker() {
        let json = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(json, "[1.0]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, vec![1.0]);
    }
}
