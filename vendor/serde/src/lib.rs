//! Vendored, offline subset of the `serde` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! its own small serialization framework under the `serde` name:
//!
//! * [`Value`] — a JSON-like self-describing data model;
//! * [`Serialize`] / [`Deserialize`] — conversions to and from [`Value`],
//!   derivable via the companion `serde_derive` proc-macro crate (re-exported
//!   here, exactly like the real serde's `derive` feature);
//! * the `#[serde(skip)]` field attribute (the only one the workspace uses).
//!
//! The vendored `serde_json` crate renders [`Value`] to JSON text and parses
//! it back, so derived types get a real round-trip. Swapping the genuine
//! serde back in is a `Cargo.toml`-only change for the workspace crates.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value: the data model every `Serialize` impl targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries when the value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the sequence elements when the value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the string when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in map entries (helper used by derived code).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    _ => return Err(Error::custom("expected unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
