//! Experiment E10 — the limits of weaker characterizations.
//!
//! Searches for networks that are Banyan but not Baseline-equivalent, and
//! for networks that additionally satisfy Agrawal's buddy property in both
//! directions yet are still not Baseline-equivalent (the point made by
//! reference [10] of the paper). Prints each find with its diagnosis.
//!
//! ```text
//! cargo run --release --example counterexample_hunt [-- <stages> <attempts>]
//! ```

use baseline_equivalence::prelude::*;
use min_core::buddy::{buddy_property, reverse_buddy_property};
use min_core::properties::characterization_report;
use min_graph::paths::is_banyan;
use min_graph::serialize::to_text;
use min_networks::counterexample::{find_banyan_not_equivalent, find_buddy_not_equivalent};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut args = std::env::args().skip(1);
    let stages: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let attempts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);

    println!("== Hunting for counterexamples at n = {stages} ({attempts} attempts each) ==\n");

    println!("-- The deterministic textbook counterexample (N = 8) --");
    describe(&min_networks::counterexample::banyan_not_baseline_equivalent().to_digraph());

    println!("\n-- Random Banyan-but-not-equivalent instance --");
    match find_banyan_not_equivalent(stages, attempts, &mut rng) {
        Some(net) => {
            let g = net.to_digraph();
            describe(&g);
            println!("{}", to_text(&g));
        }
        None => {
            println!("none found within {attempts} attempts (Banyan wiring is rare at this size)")
        }
    }

    println!("-- Random buddy-but-not-equivalent instance (Agrawal's gap) --");
    match find_buddy_not_equivalent(stages, attempts, &mut rng) {
        Some(net) => {
            let g = net.to_digraph();
            describe(&g);
            println!(
                "  buddy property: forward = {}, reverse = {}",
                buddy_property(&g).holds,
                reverse_buddy_property(&g).holds
            );
            println!("{}", to_text(&g));
        }
        None => println!("none found within {attempts} attempts"),
    }
}

fn describe(g: &MiDigraph) {
    let report = characterization_report(g);
    println!(
        "  Banyan = {}, P(1,*) = {}, P(*,n) = {}, Baseline-equivalent = {}",
        is_banyan(g),
        report.p_one_star(),
        report.p_star_n(),
        report.satisfied()
    );
    if let Err(e) = baseline_isomorphism(g) {
        println!("  certificate refused: {e}");
    }
}
