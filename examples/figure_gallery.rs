//! Experiments E1–E5 — regenerate the paper's figures.
//!
//! Writes DOT renderings of Figures 1, 2, 4 and 5 into `target/figures/` and
//! prints the structural facts each figure illustrates (Fig. 3 is the
//! component structure used in Lemma 2, reported textually).
//!
//! ```text
//! cargo run --example figure_gallery
//! ```

use baseline_equivalence::prelude::*;
use min_core::pipid::connection_from_pipid;
use min_graph::components::component_ids_range;
use min_graph::dot::{to_dot, DotOptions};
use min_networks::counterexample::fig5_network;
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out_dir = PathBuf::from("target/figures");
    fs::create_dir_all(&out_dir)?;

    // ----- Figure 1: the 4-stage Baseline network and its MI-digraph -----
    let n = 4;
    let baseline = networks::baseline(n);
    let g = baseline.to_digraph();
    let dot = to_dot(
        &g,
        &DotOptions {
            name: "Fig1_Baseline".into(),
            binary_labels: None,
            undirected_style: true,
        },
    );
    fs::write(out_dir.join("fig1_baseline.dot"), &dot)?;
    println!(
        "Fig. 1  Baseline n={n}: {} cells/stage, {} arcs  -> {}",
        g.width(),
        g.arc_count(),
        out_dir.join("fig1_baseline.dot").display()
    );

    // ----- Figure 2: binary labelling of the cells ------------------------
    let dot = to_dot(
        &g,
        &DotOptions {
            name: "Fig2_Labels".into(),
            binary_labels: Some(n - 1),
            undirected_style: true,
        },
    );
    fs::write(out_dir.join("fig2_labels.dot"), &dot)?;
    println!(
        "Fig. 2  cell labels are (n-1)-tuples, e.g. cell 5 = {}",
        labels::gf2::format_tuple(5, n - 1)
    );

    // ----- Figure 3: the component structure of Lemma 2 -------------------
    println!("Fig. 3  components of (G)_(j,n) for the Baseline, n={n}:");
    for j in 0..n {
        let rc = component_ids_range(&g, j, n - 1);
        let sizes = rc.stage_intersection_sizes(j);
        println!(
            "        j={}  components={}  each meets stage {} in {:?} nodes",
            j + 1,
            rc.count,
            j + 1,
            sizes
        );
    }

    // ----- Figure 4: link labels and a PIPID permutation ------------------
    let theta = IndexPermutation::perfect_shuffle(n);
    let stage = connection_from_pipid(&theta);
    println!(
        "Fig. 4  perfect shuffle θ = {theta}, critical digit k = θ⁻¹(0) = {}",
        stage.critical_digit
    );
    let omega = networks::omega(n);
    let dot = to_dot(
        &omega.to_digraph(),
        &DotOptions {
            name: "Fig4_Omega_stage".into(),
            binary_labels: Some(n - 1),
            undirected_style: true,
        },
    );
    fs::write(out_dir.join("fig4_omega.dot"), &dot)?;

    // ----- Figure 5: the degenerate stage θ⁻¹(0) = 0 ----------------------
    let fig5 = fig5_network(n);
    let g5 = fig5.to_digraph();
    let dot = to_dot(
        &g5,
        &DotOptions {
            name: "Fig5_Degenerate".into(),
            binary_labels: None,
            undirected_style: true,
        },
    );
    fs::write(out_dir.join("fig5_degenerate.dot"), &dot)?;
    println!(
        "Fig. 5  degenerate last stage: parallel links = {}, Banyan = {}",
        g5.has_parallel_arcs(),
        min_graph::paths::is_banyan(&g5)
    );

    println!("\nDOT files written to {}", out_dir.display());
    Ok(())
}
