//! Quickstart: build a network, check every hypothesis of the paper, and
//! print the explicit isomorphism onto the Baseline network.
//!
//! ```text
//! cargo run --example quickstart [-- <stages>]
//! ```

use baseline_equivalence::prelude::*;
use min_core::independence::independence_certificate;
use min_core::properties::characterization_report;

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let n_terminals = 1usize << stages;
    println!("== Omega network with {stages} stages ({n_terminals} terminals) ==\n");

    let omega = networks::omega(stages);
    let digraph = omega.to_digraph();

    // --- Section 3: every stage is an independent connection -------------
    println!("Section 3 — independent connections:");
    for (i, conn) in omega.connections().iter().enumerate() {
        match independence_certificate(conn) {
            Ok(cert) => println!(
                "  stage {i}: independent (β for basis digits = {:?})",
                cert.beta
            ),
            Err(v) => println!("  stage {i}: NOT independent, violated at α={:#b}", v.alpha),
        }
    }

    // --- Section 2: the graph characterization ---------------------------
    let report = characterization_report(&digraph);
    println!("\nSection 2 — characterization hypotheses:");
    println!("  proper 2x2 MI-digraph : {}", report.proper_shape);
    println!("  Banyan property       : {}", report.banyan);
    println!("  P(1,*)                : {}", report.p_one_star());
    println!("  P(*,n)                : {}", report.p_star_n());

    // --- Theorem 3: explicit certified isomorphism onto the Baseline -----
    let cert = baseline_isomorphism(&digraph).expect("omega is Baseline-equivalent");
    assert!(cert.verify(&digraph));
    println!("\nTheorem 3 — certified isomorphism onto the Baseline network:");
    let show = stages.min(3);
    for s in 0..show {
        let row: Vec<String> = cert.mapping[s]
            .iter()
            .enumerate()
            .take(8)
            .map(|(v, img)| format!("{v}→{img}"))
            .collect();
        println!(
            "  stage {s}: {}{}",
            row.join(" "),
            if cert.mapping[s].len() > 8 {
                " …"
            } else {
                ""
            }
        );
    }
    if stages > show {
        println!("  … ({} more stages)", stages - show);
    }

    // --- Section 4: bit-directed routing ----------------------------------
    println!("\nSection 4 — destination-tag routing:");
    println!("  delta network        : {}", core::is_delta(&omega));
    println!("  bidelta network      : {}", core::is_bidelta(&omega));
    let table = routing::tag::destination_tags(&omega).expect("delta");
    println!(
        "  tag for destination 0..4: {:?}",
        &table.tag_of_destination[..4.min(table.tag_of_destination.len())]
    );

    println!("\nAll of the paper's hypotheses verified for the Omega network.");
}
