//! Fault-injection sweep over the classical catalog.
//!
//! Expands a campaign grid — every classical family at n = 3..=max ×
//! uniform traffic × two offered loads × three buffer architectures × four
//! fault plans (healthy, one dead link, a seeded 2-link plan, and a
//! mid-simulation switch death with a degraded lane) — runs it across
//! worker threads, prints the per-scenario table with the reliability
//! columns, and writes the machine-readable report to
//! `fault_campaign.json`. The same `--seed` yields a byte-identical report
//! at any `--threads` value (the CI fault-smoke job `cmp`s a single-thread
//! rerun against the parallel one).
//!
//! ```text
//! cargo run --release --example fault_sweep \
//!     [-- --threads <T>] [--seed <S>] [--max-stages <B>] \
//!     [--cycles <C>] [--out <path>]
//! ```

use baseline_equivalence::prelude::{run_campaign, BufferMode, CampaignConfig, FaultPlan};
use min_sim::TrafficPattern;

fn main() {
    let mut threads = 0usize; // 0 = one worker per core
    let mut seed = 0x1988u64;
    let mut max_stages = 4usize;
    let mut cycles = 400u64;
    let mut out_path = String::from("fault_campaign.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let parse =
            |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("missing value for {what}"));
        match args[i].as_str() {
            "--threads" => threads = parse("--threads", value).parse().expect("thread count"),
            "--seed" => seed = parse("--seed", value).parse().expect("seed"),
            "--max-stages" => max_stages = parse("--max-stages", value).parse().expect("stages"),
            "--cycles" => cycles = parse("--cycles", value).parse().expect("cycles"),
            "--out" => out_path = parse("--out", value),
            other => panic!("unknown argument `{other}`"),
        }
        i += 2;
    }

    // Fault sites are chosen inside the smallest grid fabric (n = 3:
    // 3 stages × 4 cells) so every plan fits every grid cell.
    let fault_plans = vec![
        FaultPlan::none(),
        FaultPlan::none().with_dead_link(1, 0, 1, 0),
        FaultPlan::random_links(seed ^ 0xFA17, 2, 3, 4),
        FaultPlan::none()
            .with_dead_switch(1, 1, cycles / 2)
            .with_degraded_link(0, 0, 0, 0),
    ];

    let config = CampaignConfig::over_catalog(3..=max_stages)
        .with_seed(seed)
        .with_traffic(vec![TrafficPattern::Uniform])
        .with_loads(vec![0.4, 0.9])
        .with_buffer_modes(vec![
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 4,
                flits_per_packet: 4,
            },
        ])
        .with_fault_plans(fault_plans)
        .with_cycles(cycles, cycles / 10);

    println!(
        "== Fault campaign: {} catalog cells × {} loads × {} buffer modes × {} fault plans = {} scenarios (seed {seed:#x}) ==\n",
        config.cells.len(),
        config.loads.len(),
        config.buffer_modes.len(),
        config.fault_plans.len(),
        config.scenario_count(),
    );

    let started = std::time::Instant::now();
    let report = match run_campaign(&config, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fault campaign failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.summary_table());
    let a = &report.aggregate;
    println!(
        "\nreliability: {} delivered despite faults · {} fault drops · {} unroutable refusals",
        a.total_delivered_despite_fault, a.total_dropped_fault, a.total_unroutable_drops
    );
    println!(
        "completed in {:.2?} with {} worker thread(s) requested",
        elapsed,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    std::fs::write(&out_path, report.to_json()).expect("write fault campaign report");
    println!("report written to {out_path}");
}
