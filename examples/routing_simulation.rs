//! Experiment E12 — equivalent topologies are behaviourally interchangeable.
//!
//! For every network in the catalog: verify destination-tag routability,
//! count admissible cyclic-shift permutations, and run the switch-level
//! simulator under uniform and hot-spot traffic at several offered loads,
//! printing one row per (network, load). The throughput columns of
//! equivalent networks coincide up to sampling noise.
//!
//! ```text
//! cargo run --release --example routing_simulation [-- <stages>]
//! ```

use baseline_equivalence::prelude::*;
use min_routing::analysis::admissible_shift_count;
use min_routing::tag::verify_self_routing;
use min_sim::{simulate, BufferMode, SimConfig, TrafficPattern};

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let terminals = 1usize << stages;
    println!("== Routing & simulation across the catalog, n = {stages} (N = {terminals}) ==\n");

    println!(
        "{:<28} {:>12} {:>14}",
        "network", "self-routing", "adm. shifts"
    );
    for kind in ClassicalNetwork::ALL {
        let net = kind.build(stages);
        println!(
            "{:<28} {:>12} {:>14}",
            kind.name(),
            verify_self_routing(&net),
            admissible_shift_count(&net)
        );
    }

    println!("\nSwitch-level simulation (2000 cycles, unbuffered cells):");
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>10}",
        "network", "load", "tput/port", "mean lat.", "dropped"
    );
    for kind in ClassicalNetwork::ALL {
        for &load in &[0.4, 0.8, 1.0] {
            let cfg = SimConfig::default()
                .with_load(load)
                .with_cycles(2_000, 100)
                .with_seed(0x1988)
                .with_buffer(BufferMode::Unbuffered);
            let m = simulate(kind.build(stages), cfg).expect("delta network");
            println!(
                "{:<28} {:>6.2} {:>12.4} {:>12.2} {:>10}",
                kind.name(),
                load,
                m.normalized_throughput(terminals),
                m.mean_latency(),
                m.dropped()
            );
        }
    }

    println!("\nBuffered vs unbuffered, and uniform vs hot-spot (Omega, full load):");
    let omega = networks::omega(stages);
    for (label, cfg) in [
        (
            "unbuffered / uniform",
            SimConfig::default().with_load(1.0).with_cycles(2_000, 100),
        ),
        (
            "fifo(4)    / uniform",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(2_000, 100)
                .with_buffer(BufferMode::Fifo(4)),
        ),
        (
            "unbuffered / hot-spot 25%",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(2_000, 100)
                .with_traffic(TrafficPattern::Hotspot {
                    fraction: 0.25,
                    target: 0,
                }),
        ),
        (
            "worm(2x4x4) / uniform",
            SimConfig::default()
                .with_load(1.0)
                .with_cycles(2_000, 100)
                .with_buffer(BufferMode::Wormhole {
                    lanes: 2,
                    lane_depth: 4,
                    flits_per_packet: 4,
                }),
        ),
    ] {
        let m = simulate(omega.clone(), cfg).expect("delta network");
        println!(
            "  {:<26} throughput/port = {:.4}, mean latency = {:.2}, acceptance = {:.2}",
            label,
            m.normalized_throughput(terminals),
            m.mean_latency(),
            m.acceptance_rate()
        );
    }
}
