//! Equivalence-classification campaign over the classical catalog and the
//! rearrangeable constructions.
//!
//! Expands a declarative grid — every classical network family at
//! n = 2..=16, plus random-network samples (PIPID, independent-Banyan,
//! link-permutation, buddy) at smaller sizes, plus the rearrangeable axis
//! (Benes, its 2024 shuffle-based variant, and fundamental-arrangement
//! rewrites of catalog members) — into a canonical subject list, classifies
//! every network into Baseline-equivalence classes across worker threads,
//! prints the per-class summary plus the rearrangeable verdicts, and writes
//! the machine-readable report to `classification.json`. The same `--seed`
//! yields a byte-identical report at any `--threads` value; the CI
//! `classify-smoke` job runs exactly this binary twice and `cmp`s the
//! outputs.
//!
//! The expected rearrangeable verdicts are themselves gated: a full Benes
//! classified Baseline-equivalent (or an entry/exit half classified
//! non-equivalent) exits nonzero, because either way the characterization
//! machinery would be mislabelling a network whose status is a theorem.
//!
//! ```text
//! cargo run --release --example classify_sweep \
//!     [-- --threads <T>] [--seed <S>] [--min-stages <A>] [--max-stages <B>] \
//!     [--random-samples <K>] [--random-min-stages <A>] [--random-max-stages <B>] \
//!     [--benes-max-n <N>] [--rewrite-stages <n>] [--out <path>]
//! ```

use baseline_equivalence::prelude::{
    classify_subjects, ClassicalNetwork, ClassificationGrid, NetworkSpec, RandomFamily, Rewrite,
};

fn main() {
    let mut threads = 0usize; // 0 = one worker per core
    let mut seed = 0x1988u64;
    let mut min_stages = 2usize;
    let mut max_stages = 16usize;
    let mut random_samples = 2u32;
    let mut random_min_stages = 3usize;
    let mut random_max_stages = 6usize;
    let mut benes_max_n = 4usize; // 0 disables the rearrangeable axis
    let mut rewrite_stages = 4usize; // 0 disables the rewrite axis
    let mut out_path = String::from("classification.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let parse =
            |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("missing value for {what}"));
        match args[i].as_str() {
            "--threads" => threads = parse("--threads", value).parse().expect("thread count"),
            "--seed" => seed = parse("--seed", value).parse().expect("seed"),
            "--min-stages" => min_stages = parse("--min-stages", value).parse().expect("stages"),
            "--max-stages" => max_stages = parse("--max-stages", value).parse().expect("stages"),
            "--random-samples" => {
                random_samples = parse("--random-samples", value).parse().expect("samples")
            }
            "--random-min-stages" => {
                random_min_stages = parse("--random-min-stages", value).parse().expect("stages")
            }
            "--random-max-stages" => {
                random_max_stages = parse("--random-max-stages", value).parse().expect("stages")
            }
            "--benes-max-n" => benes_max_n = parse("--benes-max-n", value).parse().expect("n"),
            "--rewrite-stages" => {
                rewrite_stages = parse("--rewrite-stages", value).parse().expect("stages")
            }
            "--out" => out_path = parse("--out", value),
            other => panic!("unknown argument `{other}`"),
        }
        i += 2;
    }

    let mut grid = ClassificationGrid::over_catalog(min_stages..=max_stages).with_seed(seed);
    // The rearrangeable axis: Benes and its shuffle-based variant at
    // n = 2..=benes_max_n, plus the fundamental-arrangement rewrites of
    // every catalog family at one stage count. These ride the same subject
    // list as the catalog, so the report shows exactly which equivalence
    // classes they land in.
    let catalog_cells = grid.catalog.len();
    for n in 2..=benes_max_n.min(16) {
        grid.catalog.push(NetworkSpec::benes(n));
        grid.catalog.push(NetworkSpec::benes_variant(n));
    }
    if (2..=16).contains(&rewrite_stages) {
        for family in ClassicalNetwork::ALL {
            for rewrite in Rewrite::ALL {
                grid.catalog
                    .push(NetworkSpec::rewritten(family, rewrite_stages, rewrite));
            }
        }
    }
    let rearrangeable_cells = grid.catalog.len() - catalog_cells;
    if random_samples > 0 {
        grid = grid.with_random(
            RandomFamily::ALL.to_vec(),
            random_min_stages..=random_max_stages,
            random_samples,
        );
    }

    println!(
        "== Classification: {catalog_cells} catalog cells (n={min_stages}..={max_stages}) + {rearrangeable_cells} rearrangeable/rewritten cells + {} random subjects = {} subjects (seed {seed:#x}) ==\n",
        grid.subject_count() - grid.catalog.len(),
        grid.subject_count(),
    );

    let subjects = grid.subjects();
    let started = std::time::Instant::now();
    let report = match classify_subjects(&subjects, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("classification failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.summary_table());
    println!(
        "\ncompleted in {:.2?} with {} worker thread(s) requested",
        elapsed,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    if report
        .classes
        .iter()
        .any(|c| c.equivalent && !c.cross_verified)
    {
        eprintln!("cross-verification failed for an equivalence class");
        std::process::exit(1);
    }

    // Rearrangeable verdicts: the full Benes (and its variant) must NOT be
    // Baseline-equivalent — they are rearrangeable, not banyan — while
    // their two banyan halves are exactly the Baseline and Reverse Baseline
    // networks, whose rows in the same report must be equivalent. Both
    // verdicts are theorems, so a flip either way is a machinery bug.
    let mut failed = false;
    if benes_max_n >= 2 {
        println!("\n== Rearrangeable verdicts ==");
        for r in &report.subjects {
            let rearrangeable = r.family == "Benes" || r.family == "Benes-variant";
            let rewritten = r.family.contains('+');
            if !rearrangeable && !rewritten {
                continue;
            }
            println!(
                "{:<24} n={:<2} -> {}",
                r.family,
                r.stages,
                if r.equivalent {
                    "Baseline-equivalent"
                } else {
                    "NOT Baseline-equivalent"
                }
            );
            if rearrangeable && r.equivalent {
                eprintln!("{} classified Baseline-equivalent — impossible", r.name());
                failed = true;
            }
        }
        // The halves of Benes(n) are the n-stage Baseline / Reverse
        // Baseline, present as catalog rows of the same report.
        for r in &report.subjects {
            if (r.family == "Baseline" || r.family == "Reverse Baseline")
                && r.stages >= min_stages.max(2)
                && r.stages <= benes_max_n
                && !r.equivalent
            {
                eprintln!("Benes half {} not Baseline-equivalent", r.name());
                failed = true;
            }
        }
        println!("(each Benes(n) splits into the n-stage Baseline + Reverse Baseline banyan halves above, which classify as equivalent)");
    }
    if failed {
        std::process::exit(1);
    }

    std::fs::write(&out_path, report.to_json()).expect("write classification report");
    println!("report written to {out_path}");
}
