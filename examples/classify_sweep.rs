//! Equivalence-classification campaign over the classical catalog.
//!
//! Expands a declarative grid — every classical network family at
//! n = 2..=16, plus random-network samples (PIPID, independent-Banyan,
//! link-permutation, buddy) at smaller sizes — into a canonical subject
//! list, classifies every network into Baseline-equivalence classes across
//! worker threads, prints the per-class summary, and writes the
//! machine-readable report to `classification.json`. The same `--seed`
//! yields a byte-identical report at any `--threads` value; the CI
//! `classify-smoke` job runs exactly this binary twice and `cmp`s the
//! outputs.
//!
//! ```text
//! cargo run --release --example classify_sweep \
//!     [-- --threads <T>] [--seed <S>] [--min-stages <A>] [--max-stages <B>] \
//!     [--random-samples <K>] [--random-min-stages <A>] [--random-max-stages <B>] \
//!     [--out <path>]
//! ```

use baseline_equivalence::prelude::{classify_subjects, ClassificationGrid, RandomFamily};

fn main() {
    let mut threads = 0usize; // 0 = one worker per core
    let mut seed = 0x1988u64;
    let mut min_stages = 2usize;
    let mut max_stages = 16usize;
    let mut random_samples = 2u32;
    let mut random_min_stages = 3usize;
    let mut random_max_stages = 6usize;
    let mut out_path = String::from("classification.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let parse =
            |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("missing value for {what}"));
        match args[i].as_str() {
            "--threads" => threads = parse("--threads", value).parse().expect("thread count"),
            "--seed" => seed = parse("--seed", value).parse().expect("seed"),
            "--min-stages" => min_stages = parse("--min-stages", value).parse().expect("stages"),
            "--max-stages" => max_stages = parse("--max-stages", value).parse().expect("stages"),
            "--random-samples" => {
                random_samples = parse("--random-samples", value).parse().expect("samples")
            }
            "--random-min-stages" => {
                random_min_stages = parse("--random-min-stages", value).parse().expect("stages")
            }
            "--random-max-stages" => {
                random_max_stages = parse("--random-max-stages", value).parse().expect("stages")
            }
            "--out" => out_path = parse("--out", value),
            other => panic!("unknown argument `{other}`"),
        }
        i += 2;
    }

    let mut grid = ClassificationGrid::over_catalog(min_stages..=max_stages).with_seed(seed);
    if random_samples > 0 {
        grid = grid.with_random(
            RandomFamily::ALL.to_vec(),
            random_min_stages..=random_max_stages,
            random_samples,
        );
    }

    println!(
        "== Classification: {} catalog cells (n={min_stages}..={max_stages}) + {} random subjects = {} subjects (seed {seed:#x}) ==\n",
        grid.catalog.len(),
        grid.subject_count() - grid.catalog.len(),
        grid.subject_count(),
    );

    let subjects = grid.subjects();
    let started = std::time::Instant::now();
    let report = match classify_subjects(&subjects, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("classification failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.summary_table());
    println!(
        "\ncompleted in {:.2?} with {} worker thread(s) requested",
        elapsed,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    if report
        .classes
        .iter()
        .any(|c| c.equivalent && !c.cross_verified)
    {
        eprintln!("cross-verification failed for an equivalence class");
        std::process::exit(1);
    }

    std::fs::write(&out_path, report.to_json()).expect("write classification report");
    println!("report written to {out_path}");
}
