//! Distributed campaign demo: a master and workers in one process.
//!
//! Spins up a `min-serve` master on an ephemeral localhost port, submits a
//! small campaign, runs a few worker loops in threads — killing one of
//! them right after its first lease to exercise heartbeat failover — and
//! then proves the merged report is byte-identical to the single-threaded
//! in-process run. The same flow works across machines with the
//! `min_serve` binary: `master`, `worker --connect`, `submit --wait`.
//!
//! ```text
//! cargo run --release --example distributed_campaign
//! ```

use std::time::Duration;

use baseline_equivalence::prelude::*;
use baseline_equivalence::serve;

fn main() {
    let config = CampaignConfig::over_catalog(3..=3)
        .with_traffic(vec![TrafficPattern::Uniform, TrafficPattern::BitReversal])
        .with_loads(vec![0.4, 0.9])
        .with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::none().with_dead_link(1, 0, 1, 0),
        ])
        .with_replications(2)
        .with_cycles(200, 40);

    println!(
        "single-threaded baseline ({} scenarios)…",
        config.scenario_count()
    );
    let reference = run_campaign(&config, 1).expect("campaign runs").to_json();

    let master = Master::bind(
        "127.0.0.1:0",
        MasterConfig {
            heartbeat_timeout: Duration::from_millis(800),
            once: true,
            tick: Duration::from_millis(2),
        },
    )
    .expect("bind master");
    let addr = master.local_addr();
    println!("master on {addr}");
    let master = std::thread::spawn(move || master.run().expect("master runs"));

    let (shards, scenarios) = serve::submit(addr, &config, 2).expect("submit");
    println!("submitted: {shards} shards, {scenarios} scenarios");

    // One worker "crashes" immediately after leasing a shard; the master
    // requeues it once the heartbeat deadline passes.
    let mut doomed = WorkerConfig::new(addr.to_string(), "doomed");
    doomed.die_after_leases = Some(1);
    let crash = serve::run_worker(&doomed).expect("doomed worker");
    println!(
        "worker {}: leased {}, executed {} (injected crash)",
        doomed.name, crash.leased, crash.executed
    );

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let mut worker = WorkerConfig::new(addr.to_string(), format!("w{i}"));
            worker.heartbeat = Duration::from_millis(100);
            worker.poll = Duration::from_millis(10);
            std::thread::spawn(move || serve::run_worker(&worker).expect("worker runs"))
        })
        .collect();

    let report_json =
        serve::wait_for_results(addr, Duration::from_millis(50)).expect("job completes");
    for worker in workers {
        let summary = worker.join().expect("worker thread");
        println!("worker finished: {summary:?}");
    }
    master.join().expect("master thread");

    assert_eq!(
        report_json, reference,
        "distributed report diverged from the single-threaded baseline"
    );
    println!(
        "distributed report ({} bytes) is byte-identical to the single-threaded run",
        report_json.len()
    );
}
