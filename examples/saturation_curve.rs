//! Offered-load saturation sweep over the unbuffered catalog.
//!
//! Expands a campaign grid — every classical family at n = 3..=max ×
//! uniform traffic × an offered-load ladder from 0.1 to 1.0 — with enough
//! replications per scenario that the word-packed `LaneEngine` carries the
//! whole sweep, prints the per-scenario table, and writes the saturation
//! curve (replication-averaged throughput/latency per family × size ×
//! load) to `saturation.json`; the committed copy at the repository root
//! is this example's default-argument output. The same `--seed` yields a
//! byte-identical curve at any `--threads` value (the CI smoke job `cmp`s
//! a single-thread rerun against the parallel one).
//!
//! Setting the `BENCH_QUICK` environment variable to anything but `0` or
//! the empty string shrinks the grid (fewer loads, smaller fabrics,
//! shorter runs) for smoke-test use; committed artifacts must come from a
//! default run.
//!
//! ```text
//! cargo run --release --example saturation_curve \
//!     [-- --threads <T>] [--seed <S>] [--max-stages <B>] \
//!     [--cycles <C>] [--out <path>]
//! ```

use baseline_equivalence::prelude::{run_campaign, CampaignConfig, CampaignReport};
use std::fmt::Write as _;

/// One grid point of the saturation curve, folded over its replications.
#[derive(Default)]
struct CurvePoint {
    network: String,
    stages: usize,
    load: f64,
    throughput_sum: f64,
    mean_latency_sum: f64,
    p99_latency: u64,
    acceptance_sum: f64,
    delivered: u64,
    dropped: u64,
}

/// Renders the replication-averaged saturation curve as deterministic JSON:
/// one point per (family, stage count, offered load) grid cell, in the
/// canonical grid-expansion order. Fixed-precision float formatting keeps
/// the bytes reproducible across platforms and thread counts.
fn curve_json(report: &CampaignReport, cycles: u64, replications: u32) -> String {
    let mut points: Vec<CurvePoint> = Vec::new();
    for r in &report.scenarios {
        let s = &r.scenario;
        // Replications of one grid point are adjacent in the canonical
        // expansion (the replication axis is innermost), so grouping is a
        // running fold over the result list.
        let matches = points.last().is_some_and(|p| {
            (p.network.as_str(), p.stages, p.load)
                == (s.network.name().as_str(), s.stages, s.offered_load)
        });
        if !matches {
            points.push(CurvePoint {
                network: s.network.name(),
                stages: s.stages,
                load: s.offered_load,
                ..CurvePoint::default()
            });
        }
        let p = points.last_mut().expect("just pushed");
        p.throughput_sum += r.throughput;
        p.mean_latency_sum += r.mean_latency;
        p.p99_latency = p.p99_latency.max(r.p99_latency);
        p.acceptance_sum += r.acceptance;
        p.delivered += r.delivered;
        p.dropped += r.dropped;
    }
    let reps = f64::from(replications);
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"cycles\":{cycles},\"replications\":{replications},\"points\":["
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"network\":\"{}\",\"stages\":{},\"load\":{:.2},\
             \"throughput\":{:.6},\"mean_latency\":{:.4},\"p99_latency\":{},\
             \"acceptance\":{:.6},\"delivered\":{},\"dropped\":{}}}",
            p.network,
            p.stages,
            p.load,
            p.throughput_sum / reps,
            p.mean_latency_sum / reps,
            p.p99_latency,
            p.acceptance_sum / reps,
            p.delivered,
            p.dropped,
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut threads = 0usize; // 0 = one worker per core
    let mut seed = 0x1988u64;
    let mut max_stages = if quick { 4 } else { 6 };
    let mut cycles = if quick { 200 } else { 600 };
    let mut out_path = String::from("saturation.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let parse =
            |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("missing value for {what}"));
        match args[i].as_str() {
            "--threads" => threads = parse("--threads", value).parse().expect("thread count"),
            "--seed" => seed = parse("--seed", value).parse().expect("seed"),
            "--max-stages" => max_stages = parse("--max-stages", value).parse().expect("stages"),
            "--cycles" => cycles = parse("--cycles", value).parse().expect("cycles"),
            "--out" => out_path = parse("--out", value),
            other => panic!("unknown argument `{other}`"),
        }
        i += 2;
    }

    // The load ladder: the saturation knee of an unbuffered banyan sits
    // well below 1.0, so the ladder is densest where the curve bends.
    let loads: Vec<f64> = if quick {
        vec![0.2, 0.6, 1.0]
    } else {
        (1..=10).map(|step| f64::from(step) / 10.0).collect()
    };
    // Enough replications that every scenario rides the word-packed lane
    // engine (the batching layer needs at least its lane threshold) and
    // the per-point statistics stabilize.
    let replications = if quick { 16 } else { 32 };

    let config = CampaignConfig::over_catalog(3..=max_stages)
        .with_seed(seed)
        .with_loads(loads)
        .with_replications(replications)
        .with_cycles(cycles, cycles / 10);

    println!(
        "== Saturation sweep: {} catalog cells × {} loads × {} replications = {} scenarios (seed {seed:#x}) ==\n",
        config.cells.len(),
        config.loads.len(),
        config.replications,
        config.scenario_count(),
    );

    let started = std::time::Instant::now();
    let report = match run_campaign(&config, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("saturation sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.summary_table());
    let a = &report.aggregate;
    println!(
        "\nsaturation: mean throughput {:.4} · worst mean latency {:.2} cy · worst p99 {} cy",
        a.mean_throughput, a.worst_mean_latency, a.worst_p99_latency
    );
    println!(
        "completed in {:.2?} with {} worker thread(s) requested",
        elapsed,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    std::fs::write(&out_path, curve_json(&report, cycles, replications))
        .expect("write saturation curve");
    println!("curve written to {out_path}");
}
