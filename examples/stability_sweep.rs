//! Saturation/stability sweep under production-shaped traffic.
//!
//! Where `saturation_curve` sweeps uniform Bernoulli traffic over the
//! unbuffered catalog, this example drives the *hardened* traffic layer —
//! Zipf-skewed destinations and bursty Markov-modulated ON/OFF sources,
//! with uniform traffic as the control — across every switching core
//! (unbuffered, FIFO, and a wormhole lane ladder) on the 32-terminal Omega
//! and Baseline cells. The offered-load axis is open-loop: refused packets
//! still count as offered, so the curves reproduce the classic
//! stability-analysis shape where delivered throughput tracks the offered
//! rate up to a knee and then flattens (cf. the wormhole saturation curves
//! of arXiv:2007.02550 and the Omega-network stability analysis of
//! arXiv:1202.1062).
//!
//! The replication-averaged curves — offered rate, delivered throughput,
//! acceptance, latency and occupancy per grid point, plus the detected
//! saturation load (the first point where throughput falls more than 5 %
//! below the offered rate) — are written as deterministic fixed-precision
//! JSON; the committed `stability.json` at the repository root is this
//! example's default-argument output. The same `--seed` yields a
//! byte-identical file at any `--threads` value (CI `cmp`s a single-thread
//! rerun against the parallel one).
//!
//! The example *gates its own output*: it exits nonzero unless every buffer
//! mode shows a measurable saturation point for at least one Zipf curve and
//! at least one bursty ON/OFF curve — the shape the stability literature
//! predicts. A silent regression in the traffic layer (say, skew or
//! burstiness quietly degrading to uniform) fails the run instead of
//! committing a flat curve.
//!
//! Setting `BENCH_QUICK` to anything but `0` or the empty string shrinks
//! the grid for smoke-test use; committed artifacts must come from a
//! default run.
//!
//! ```text
//! cargo run --release --example stability_sweep \
//!     [-- --threads <T>] [--seed <S>] [--cycles <C>] [--out <path>]
//! ```

use baseline_equivalence::prelude::{
    run_campaign, BufferMode, CampaignConfig, CampaignReport, ClassicalNetwork, NetworkSpec,
    TrafficPattern,
};
use std::fmt::Write as _;

/// Relative throughput shortfall that marks the saturation point: the
/// first ladder load where `throughput < (1 - THRESHOLD) × offered`.
const DIVERGENCE_THRESHOLD: f64 = 0.05;

/// One load point of a stability curve, folded over its replications.
struct Point {
    load: f64,
    offered_packets: u64,
    throughput_sum: f64,
    acceptance_sum: f64,
    mean_latency_sum: f64,
    occupancy_sum: f64,
    replications: u32,
    terminals: usize,
}

impl Point {
    /// Replication-averaged offered rate (packets per terminal per cycle).
    /// Open-loop: refused packets are in the numerator too.
    fn offered_rate(&self, cycles: u64) -> f64 {
        let slots = cycles as f64 * self.terminals as f64 * f64::from(self.replications);
        if slots == 0.0 {
            0.0
        } else {
            self.offered_packets as f64 / slots
        }
    }
}

/// One (network × traffic × buffer mode) stability curve: its load ladder
/// in ascending order.
struct Curve {
    network: String,
    stages: usize,
    traffic: &'static str,
    buffers: String,
    points: Vec<Point>,
}

impl Curve {
    /// The first ladder load whose delivered throughput falls more than
    /// [`DIVERGENCE_THRESHOLD`] below the offered rate — the stability
    /// knee. `None` when the curve never diverges on this ladder.
    fn saturation_load(&self, cycles: u64) -> Option<f64> {
        self.points.iter().find_map(|p| {
            let offered = p.offered_rate(cycles);
            let throughput = p.throughput_sum / f64::from(p.replications);
            (offered > 0.0 && throughput < (1.0 - DIVERGENCE_THRESHOLD) * offered).then_some(p.load)
        })
    }
}

/// Groups the scenario results into per-(network, traffic, buffer-mode)
/// curves. The load axis sits *outside* the buffer-mode axis in the
/// canonical grid expansion, so one curve's points are not adjacent in the
/// result list: grouping goes through an insertion-ordered keyed lookup
/// (replications, the innermost axis, still fold into the last point).
fn fold_curves(report: &CampaignReport) -> Vec<Curve> {
    let mut curves: Vec<Curve> = Vec::new();
    for r in &report.scenarios {
        let s = &r.scenario;
        let key = (
            s.network.name(),
            s.stages,
            s.traffic.label(),
            s.buffer_mode.label(),
        );
        let curve = match curves.iter_mut().find(|c| {
            (c.network.as_str(), c.stages, c.traffic, c.buffers.as_str())
                == (key.0.as_str(), key.1, key.2, key.3.as_str())
        }) {
            Some(curve) => curve,
            None => {
                curves.push(Curve {
                    network: key.0,
                    stages: key.1,
                    traffic: key.2,
                    buffers: key.3,
                    points: Vec::new(),
                });
                curves.last_mut().expect("just pushed")
            }
        };
        let same_load = curve.points.last().map(|p| p.load) == Some(s.offered_load);
        if !same_load {
            curve.points.push(Point {
                load: s.offered_load,
                offered_packets: 0,
                throughput_sum: 0.0,
                acceptance_sum: 0.0,
                mean_latency_sum: 0.0,
                occupancy_sum: 0.0,
                replications: 0,
                terminals: s.network.terminals(),
            });
        }
        let p = curve.points.last_mut().expect("just pushed");
        p.offered_packets += r.offered;
        p.throughput_sum += r.throughput;
        p.acceptance_sum += r.acceptance;
        p.mean_latency_sum += r.mean_latency;
        p.occupancy_sum += r.mean_occupancy;
        p.replications += 1;
    }
    curves
}

/// Renders the curves as deterministic JSON: fixed-precision floats in the
/// canonical curve order keep the bytes identical across platforms and
/// thread counts.
fn stability_json(curves: &[Curve], cycles: u64, warmup: u64, replications: u32) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"cycles\":{cycles},\"warmup\":{warmup},\"replications\":{replications},\
         \"divergence_threshold\":{DIVERGENCE_THRESHOLD},\"curves\":["
    );
    for (i, c) in curves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"network\":\"{}\",\"stages\":{},\"traffic\":\"{}\",\"buffers\":\"{}\",\"points\":[",
            c.network, c.stages, c.traffic, c.buffers
        );
        for (j, p) in c.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let reps = f64::from(p.replications);
            let _ = write!(
                out,
                "{{\"load\":{:.2},\"offered\":{:.6},\"throughput\":{:.6},\
                 \"acceptance\":{:.6},\"mean_latency\":{:.4},\"occupancy\":{:.6}}}",
                p.load,
                p.offered_rate(cycles),
                p.throughput_sum / reps,
                p.acceptance_sum / reps,
                p.mean_latency_sum / reps,
                p.occupancy_sum / reps,
            );
        }
        out.push_str("],\"saturation_load\":");
        match c.saturation_load(cycles) {
            Some(load) => {
                let _ = write!(out, "{load:.2}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut threads = 0usize; // 0 = one worker per core
    let mut seed = 0x5AB1E_u64;
    let mut cycles = if quick { 200 } else { 600 };
    let mut out_path = String::from("stability.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let parse =
            |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("missing value for {what}"));
        match args[i].as_str() {
            "--threads" => threads = parse("--threads", value).parse().expect("thread count"),
            "--seed" => seed = parse("--seed", value).parse().expect("seed"),
            "--cycles" => cycles = parse("--cycles", value).parse().expect("cycles"),
            "--out" => out_path = parse("--out", value),
            other => panic!("unknown argument `{other}`"),
        }
        i += 2;
    }

    let stages = if quick { 4 } else { 5 };
    let cells = vec![
        NetworkSpec::catalog(ClassicalNetwork::Omega, stages),
        NetworkSpec::catalog(ClassicalNetwork::Baseline, stages),
    ];
    // Uniform Bernoulli is the control; the Zipf skew concentrates traffic
    // on a few hot destinations, and the ON/OFF source fires full-rate
    // bursts at a 3:1 duty cycle — both saturate well below the uniform
    // knee.
    let traffic = vec![
        TrafficPattern::Uniform,
        TrafficPattern::Zipf { exponent: 1.0 },
        TrafficPattern::OnOff {
            on_dwell: 30.0,
            off_dwell: 10.0,
            on_rate: 1.0,
        },
    ];
    let buffer_modes = vec![
        BufferMode::Unbuffered,
        BufferMode::Fifo(4),
        BufferMode::Wormhole {
            lanes: 1,
            lane_depth: 4,
            flits_per_packet: 4,
        },
        BufferMode::Wormhole {
            lanes: 2,
            lane_depth: 4,
            flits_per_packet: 4,
        },
        BufferMode::Wormhole {
            lanes: 4,
            lane_depth: 4,
            flits_per_packet: 4,
        },
    ];
    let loads: Vec<f64> = if quick {
        vec![0.3, 0.6, 0.9]
    } else {
        (1..=10).map(|step| f64::from(step) / 10.0).collect()
    };
    let replications = if quick { 4 } else { 8 };
    let warmup = cycles / 10;

    let config = CampaignConfig::over_catalog(3..=3)
        .with_cells(cells)
        .with_seed(seed)
        .with_traffic(traffic)
        .with_loads(loads)
        .with_buffer_modes(buffer_modes)
        .with_replications(replications)
        .with_cycles(cycles, warmup);

    println!(
        "== Stability sweep: {} cells × {} traffic × {} loads × {} modes × {} reps = {} scenarios (seed {seed:#x}) ==\n",
        config.cells.len(),
        config.traffic.len(),
        config.loads.len(),
        config.buffer_modes.len(),
        config.replications,
        config.scenario_count(),
    );

    let started = std::time::Instant::now();
    let report = match run_campaign(&config, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stability sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();

    let curves = fold_curves(&report);
    println!(
        "{:<10} {:>2}  {:<8} {:<14} {:>10}",
        "network", "n", "traffic", "buffers", "saturation"
    );
    for c in &curves {
        let knee = match c.saturation_load(cycles) {
            Some(load) => format!("{load:.2}"),
            None => "—".to_string(),
        };
        println!(
            "{:<10} {:>2}  {:<8} {:<14} {:>10}",
            c.network, c.stages, c.traffic, c.buffers, knee
        );
    }
    println!("\ncompleted in {elapsed:.2?}");

    std::fs::write(
        &out_path,
        stability_json(&curves, cycles, warmup, replications),
    )
    .expect("write stability curves");
    println!("curves written to {out_path}");

    // Self-gate: every buffer mode must show the stability-literature shape
    // — a measurable saturation knee for at least one Zipf curve and at
    // least one bursty ON/OFF curve. A traffic-layer regression that
    // flattens the skew or the bursts fails the run here.
    let mut failures = Vec::new();
    for mode in &config.buffer_modes {
        for wanted in ["zipf", "on-off"] {
            let saturates = curves.iter().any(|c| {
                c.buffers == mode.label()
                    && c.traffic == wanted
                    && c.saturation_load(cycles).is_some()
            });
            if !saturates {
                failures.push(format!("{} under {wanted}", mode.label()));
            }
        }
    }
    if !failures.is_empty() {
        eprintln!(
            "stability gate failed: no saturation point for {}",
            failures.join(", ")
        );
        std::process::exit(1);
    }
    println!("stability gate passed: every buffer mode saturates under zipf and on-off traffic");
}
