//! Scenario-campaign sweep over the classical catalog.
//!
//! Expands a declarative grid — every classical network family at n = 3..=5
//! × three traffic patterns × three offered loads × three buffer
//! architectures (unbuffered, FIFO, multi-lane wormhole) — into a work
//! queue, runs it across worker threads, prints the per-scenario summary
//! table, and writes the machine-readable report to `campaign.json`. The
//! same `--seed` yields a byte-identical report at any `--threads` value.
//!
//! ```text
//! cargo run --release --example campaign_sweep \
//!     [-- --threads <T>] [--seed <S>] [--min-stages <A>] [--max-stages <B>] \
//!     [--cycles <C>] [--out <path>]
//! ```

use baseline_equivalence::prelude::{run_campaign, BufferMode, CampaignConfig};
use min_sim::TrafficPattern;

fn main() {
    let mut threads = 0usize; // 0 = one worker per core
    let mut seed = 0x1988u64;
    let mut min_stages = 3usize;
    let mut max_stages = 5usize;
    let mut cycles = 600u64;
    let mut out_path = String::from("campaign.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let parse =
            |what: &str, v: Option<String>| v.unwrap_or_else(|| panic!("missing value for {what}"));
        match args[i].as_str() {
            "--threads" => threads = parse("--threads", value).parse().expect("thread count"),
            "--seed" => seed = parse("--seed", value).parse().expect("seed"),
            "--min-stages" => min_stages = parse("--min-stages", value).parse().expect("stages"),
            "--max-stages" => max_stages = parse("--max-stages", value).parse().expect("stages"),
            "--cycles" => cycles = parse("--cycles", value).parse().expect("cycles"),
            "--out" => out_path = parse("--out", value),
            other => panic!("unknown argument `{other}`"),
        }
        i += 2;
    }

    let config = CampaignConfig::over_catalog(min_stages..=max_stages)
        .with_seed(seed)
        .with_traffic(vec![
            TrafficPattern::Uniform,
            TrafficPattern::Hotspot {
                fraction: 0.25,
                target: 0,
            },
            TrafficPattern::BitReversal,
        ])
        .with_loads(vec![0.4, 0.8, 1.0])
        .with_buffer_modes(vec![
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            BufferMode::Wormhole {
                lanes: 2,
                lane_depth: 4,
                flits_per_packet: 4,
            },
        ])
        .with_cycles(cycles, cycles / 10);

    println!(
        "== Campaign: {} catalog cells × {} traffic × {} loads × {} buffer modes = {} scenarios (seed {seed:#x}) ==\n",
        config.cells.len(),
        config.traffic.len(),
        config.loads.len(),
        config.buffer_modes.len(),
        config.scenario_count(),
    );

    let started = std::time::Instant::now();
    let report = match run_campaign(&config, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", report.summary_table());
    println!(
        "\ncompleted in {:.2?} with {} worker thread(s) requested",
        elapsed,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    std::fs::write(&out_path, report.to_json()).expect("write campaign report");
    println!("report written to {out_path}");
}
