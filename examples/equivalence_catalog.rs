//! Experiment E9 — the paper's headline corollary.
//!
//! Builds the six classical networks at a given size, computes the full
//! pairwise equivalence matrix with explicit certificates, and prints one
//! sample mapping. Also includes the negative controls: the Fig. 5
//! degenerate network and the Banyan-but-not-equivalent counterexample.
//!
//! ```text
//! cargo run --release --example equivalence_catalog [-- <stages>]
//! ```

use baseline_equivalence::prelude::*;
use min_core::properties::characterization_report;
use min_graph::iso::verify_stage_mapping;
use min_networks::counterexample;
use std::thread;

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!(
        "== Pairwise equivalence of the six classical networks, n = {stages} (N = {}) ==\n",
        1usize << stages
    );

    let kinds = ClassicalNetwork::ALL;
    let digraphs: Vec<_> = kinds.iter().map(|k| k.build(stages).to_digraph()).collect();

    // Header
    print!("{:<28}", "");
    for k in &kinds {
        print!("{:<10}", shorten(k.name()));
    }
    println!();

    // The 36 cells of the matrix are independent; compute them with one
    // scoped thread per row and print row by row.
    let matrix: Vec<Vec<&'static str>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..kinds.len())
            .map(|i| {
                let digraphs = &digraphs;
                scope.spawn(move || {
                    (0..kinds.len())
                        .map(|j| match equivalence_mapping(&digraphs[i], &digraphs[j]) {
                            Ok(mapping) => {
                                assert!(verify_stage_mapping(&digraphs[i], &digraphs[j], &mapping));
                                "  ≅     "
                            }
                            Err(_) => "  ✗     ",
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, a) in kinds.iter().enumerate() {
        print!("{:<28}", a.name());
        for mark in &matrix[i] {
            print!("{mark:<10}");
        }
        println!();
    }

    // One explicit mapping, spelled out.
    let omega = &digraphs[2];
    let baseline = &digraphs[0];
    let mapping = equivalence_mapping(omega, baseline).expect("equivalent");
    println!("\nExplicit Omega → Baseline node mapping (first stage, first 8 cells):");
    let row: Vec<String> = mapping[0]
        .iter()
        .enumerate()
        .take(8)
        .map(|(v, img)| format!("{v}→{img}"))
        .collect();
    println!("  {}", row.join("  "));

    // Negative controls.
    println!("\nNegative controls:");
    let fig5 = counterexample::fig5_network(stages).to_digraph();
    let report = characterization_report(&fig5);
    println!(
        "  Fig. 5 degenerate network : Banyan = {}, equivalent = {}",
        report.banyan,
        report.satisfied()
    );
    let banyan_ce = counterexample::banyan_not_baseline_equivalent().to_digraph();
    let report = characterization_report(&banyan_ce);
    println!(
        "  Banyan counterexample     : Banyan = {}, P(1,*) = {}, equivalent = {}",
        report.banyan,
        report.p_one_star(),
        report.satisfied()
    );
    let buddy_ce = counterexample::buddy_not_baseline_equivalent().to_digraph();
    let report = characterization_report(&buddy_ce);
    println!(
        "  Buddy counterexample      : Banyan = {}, buddy = {}, equivalent = {}",
        report.banyan,
        min_core::buddy::buddy_property(&buddy_ce).holds,
        report.satisfied()
    );
}

fn shorten(name: &str) -> String {
    let mut s: String = name
        .split_whitespace()
        .map(|w| w.chars().next().unwrap())
        .collect();
    if s.len() == 1 {
        s = name.chars().take(4).collect();
    }
    s
}
