//! Integration tests for the equivalence-classification campaign: a tiny
//! grid over the classical catalog plus all four random families, witness
//! and partition invariants, and the headline determinism property — the
//! same grid produces a byte-identical `ClassificationReport` at one worker
//! thread and at many.

use baseline_equivalence::prelude::*;
use min_core::classify::derive_seed;
use proptest::prelude::*;

fn tiny_grid(seed: u64) -> ClassificationGrid {
    ClassificationGrid::over_catalog(2..=4)
        .with_seed(seed)
        .with_random(RandomFamily::ALL.to_vec(), 3..=4, 2)
}

#[test]
fn tiny_grid_over_the_catalog_classifies_completely() {
    let grid = tiny_grid(0xC0FFEE);
    let subjects = grid.subjects();
    // 6 families × 3 stage counts + 4 random families × 2 stage counts × 2.
    assert_eq!(subjects.len(), 18 + 16);
    let report = classify_subjects(&subjects, 3).expect("campaign runs");
    assert_eq!(report.subject_count, 34);
    assert_eq!(report.subjects.len(), 34);

    for (i, r) in report.subjects.iter().enumerate() {
        assert_eq!(r.index, i);
        assert_eq!(r.seed, derive_seed(0xC0FFEE, i));
        // Witness shape matches the verdict.
        match &r.witness {
            Witness::Violation { condition } => {
                assert!(!r.equivalent);
                assert!(!condition.is_empty());
            }
            Witness::IndependentConnections {
                differences, ranks, ..
            } => {
                assert!(r.equivalent);
                assert_eq!(differences.len(), r.stages - 1);
                assert_eq!(ranks.len(), r.stages - 1);
            }
            Witness::Characterization { .. } => assert!(r.equivalent),
        }
        // The class the subject points at contains it and matches its size.
        let class = &report.classes[r.class];
        assert!(class.members.contains(&i));
        assert_eq!(class.stages, r.stages);
        assert_eq!(class.equivalent, r.equivalent);
    }

    // The whole catalog is Baseline-equivalent: one class of six members
    // per stage count, every one cross-verified via composed certificates.
    for n in 2..=4 {
        let class = report
            .classes
            .iter()
            .find(|c| c.equivalent && c.stages == n)
            .unwrap_or_else(|| panic!("no equivalent class at n={n}"));
        assert!(class.members.len() >= 6, "all six catalog members at n={n}");
        assert!(class.cross_verified);
        assert_eq!(class.key, format!("n={n} baseline-equivalent"));
    }

    // Partition sanity: classes are disjoint, cover every subject, ids are
    // ascending, members are sorted.
    let mut seen = vec![false; report.subject_count];
    for (id, class) in report.classes.iter().enumerate() {
        assert_eq!(class.id, id);
        assert!(class.members.windows(2).all(|w| w[0] < w[1]));
        for &m in &class.members {
            assert!(!seen[m], "subject {m} appears in two classes");
            seen[m] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));

    // The JSON report parses back to the same value.
    let back = ClassificationReport::from_json(&report.to_json()).expect("report JSON parses");
    assert_eq!(back, report);
}

#[test]
fn random_link_permutations_violate_and_catalog_passes() {
    let grid = ClassificationGrid::over_catalog(4..=4)
        .with_seed(7)
        .with_random(vec![RandomFamily::LinkPermutation], 4..=4, 4);
    let report = classify_subjects(&grid.subjects(), 2).unwrap();
    // The six catalog subjects are equivalent; random link permutations at
    // n=4 essentially never are.
    assert_eq!(report.equivalent_subjects, 6);
    for r in report.subjects.iter().filter(|r| r.index >= 6) {
        assert!(
            matches!(r.witness, Witness::Violation { .. }),
            "{} unexpectedly equivalent",
            r.name()
        );
    }
    // Diagnostic classes key on the violated condition.
    for class in report.classes.iter().filter(|c| !c.equivalent) {
        assert!(class.key.starts_with("n=4 "));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The same grid yields an identical report JSON at 1 thread and at N
    /// threads, for arbitrary seeds and thread counts, with the random axis
    /// (all four families) on the grid.
    #[test]
    fn same_grid_same_report_at_any_thread_count(seed in any::<u64>(), threads in 2usize..9) {
        let grid = ClassificationGrid::over_catalog(3..=3)
            .with_seed(seed)
            .with_random(RandomFamily::ALL.to_vec(), 3..=3, 1);
        let subjects = grid.subjects();
        let sequential = classify_subjects(&subjects, 1).expect("sequential run");
        let parallel = classify_subjects(&subjects, threads).expect("parallel run");
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.to_json(), parallel.to_json());
    }
}
