//! Integration tests for the scenario-campaign runner: a tiny grid over the
//! classical catalog, the buffer-mode axis (unbuffered / FIFO / wormhole),
//! and the headline determinism property — the same campaign seed produces
//! an identical (byte-for-byte) report at one worker thread and at many,
//! for every buffer mode.

use baseline_equivalence::prelude::*;
use min_sim::campaign::scenario_seed;
use min_sim::TrafficPattern;
use min_sim::{TraceData, TraceRecord};
use proptest::prelude::*;

fn wormhole() -> BufferMode {
    BufferMode::Wormhole {
        lanes: 2,
        lane_depth: 2,
        flits_per_packet: 3,
    }
}

fn tiny_campaign(seed: u64) -> CampaignConfig {
    CampaignConfig::over_catalog(3..=3)
        .with_seed(seed)
        .with_traffic(vec![
            TrafficPattern::Uniform,
            TrafficPattern::Hotspot {
                fraction: 0.3,
                target: 1,
            },
        ])
        .with_loads(vec![0.4, 1.0])
        .with_cycles(80, 10)
}

#[test]
fn tiny_grid_over_the_classical_catalog_completes() {
    let report = run_campaign(&tiny_campaign(0xC0FFEE), 3).expect("campaign runs");
    // 6 families × 1 stage count × 2 traffic × 2 loads × 1 mode × 1 rep.
    assert_eq!(report.scenario_count, 24);
    assert_eq!(report.scenarios.len(), 24);
    for (i, r) in report.scenarios.iter().enumerate() {
        assert_eq!(r.scenario.index, i);
        assert_eq!(r.scenario.stages, 3);
        assert_eq!(r.scenario.seed, scenario_seed(0xC0FFEE, i));
        // Every scenario made progress and conserved its packets.
        assert!(r.delivered > 0, "scenario {i} delivered nothing");
        assert_eq!(r.injected, r.delivered + r.dropped + r.in_flight);
        assert_eq!(r.dropped, r.dropped_arbitration + r.dropped_backpressure);
        assert!(r.p99_latency <= r.max_latency);
    }
    // All six families appear.
    let families: std::collections::HashSet<String> = report
        .scenarios
        .iter()
        .map(|r| r.scenario.network.name())
        .collect();
    assert_eq!(families.len(), 6);
    // The JSON report parses back to the same value.
    let back = CampaignReport::from_json(&report.to_json()).expect("report JSON parses");
    assert_eq!(back, report);
}

#[test]
fn campaigns_sweep_the_buffer_mode_axis() {
    let modes = vec![BufferMode::Unbuffered, BufferMode::Fifo(8), wormhole()];
    let report = run_campaign(
        &tiny_campaign(9)
            .with_loads(vec![1.0])
            .with_buffer_modes(modes.clone()),
        2,
    )
    .unwrap();
    assert_eq!(report.buffer_modes, modes);
    // 6 families × 2 traffic × 1 load × 3 modes.
    assert_eq!(report.scenario_count, 36);
    // Per-mode behaviour shows through the shared grid: the unbuffered
    // scenarios drop (arbitration losses), the buffered and wormhole ones
    // never do.
    let dropped_by = |mode: BufferMode| -> u64 {
        report
            .scenarios
            .iter()
            .filter(|r| r.scenario.buffer_mode == mode)
            .map(|r| r.dropped)
            .sum()
    };
    assert!(dropped_by(BufferMode::Unbuffered) > 0);
    assert_eq!(dropped_by(BufferMode::Fifo(8)), 0);
    assert_eq!(dropped_by(wormhole()), 0);
    // Only the wormhole scenarios move flits.
    for r in &report.scenarios {
        match r.scenario.buffer_mode {
            BufferMode::Wormhole { .. } => assert!(r.flits_delivered > 0, "{r:?}"),
            _ => assert_eq!(r.flits_delivered, 0, "{r:?}"),
        }
    }
}

#[test]
fn campaigns_respect_the_buffer_mode() {
    let unbuffered = run_campaign(&tiny_campaign(9), 2).unwrap();
    let buffered = run_campaign(&tiny_campaign(9).with_buffer(BufferMode::Fifo(8)), 2).unwrap();
    assert_eq!(buffered.aggregate.total_dropped, 0);
    assert!(unbuffered.aggregate.total_dropped > 0);
    assert_eq!(
        unbuffered.aggregate.total_dropped,
        unbuffered.aggregate.total_dropped_arbitration
            + unbuffered.aggregate.total_dropped_backpressure
    );
    // The per-cause split is visible in the serialized report.
    let json = unbuffered.to_json();
    assert!(json.contains("\"dropped_arbitration\""));
    assert!(json.contains("\"dropped_backpressure\""));
    assert!(json.contains("\"total_dropped_arbitration\""));
}

#[test]
fn production_shaped_traffic_round_trips_through_the_report_json() {
    // The full production-shaped suite on one grid: Zipf skew, bursty
    // ON/OFF sources and trace replay, over all three switching cores.
    let trace = TraceData {
        cells: 4,
        period: 6,
        records: vec![
            TraceRecord {
                cycle: 0,
                source: 1,
                dest: 2,
            },
            TraceRecord {
                cycle: 3,
                source: 6,
                dest: 0,
            },
        ],
    };
    let config = CampaignConfig::over_catalog(3..=3)
        .with_seed(0xBEEF)
        .with_traffic(vec![
            TrafficPattern::Zipf { exponent: 0.9 },
            TrafficPattern::OnOff {
                on_dwell: 12.0,
                off_dwell: 4.0,
                on_rate: 0.8,
            },
            TrafficPattern::Trace(trace),
        ])
        .with_loads(vec![0.6])
        .with_buffer_modes(vec![
            BufferMode::Unbuffered,
            BufferMode::Fifo(4),
            wormhole(),
        ])
        .with_replications(2)
        .with_cycles(90, 10);

    let sequential = run_campaign(&config, 1).expect("sequential run");
    let parallel = run_campaign(&config, 4).expect("parallel run");
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.to_json(), parallel.to_json());

    // The serialized report — traffic patterns included — parses back to
    // the same value and re-renders to the same bytes.
    let json = sequential.to_json();
    let back = CampaignReport::from_json(&json).expect("report JSON parses");
    assert_eq!(back, sequential);
    assert_eq!(back.to_json(), json);

    // Every pattern did real work on every core.
    for r in &sequential.scenarios {
        assert!(r.offered > 0, "{:?}", r.scenario);
        assert!(r.delivered > 0, "{:?}", r.scenario);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same campaign seed yields an identical report JSON at 1 thread
    /// and at N threads, for arbitrary seeds and thread counts, with the
    /// full buffer-mode axis (including wormhole) on the grid.
    #[test]
    fn same_seed_same_report_at_any_thread_count(seed in any::<u64>(), threads in 2usize..9) {
        let cfg = tiny_campaign(seed)
            .with_loads(vec![0.7])
            .with_buffer_modes(vec![BufferMode::Unbuffered, BufferMode::Fifo(2), wormhole()])
            .with_cycles(40, 0);
        let sequential = run_campaign(&cfg, 1).expect("sequential run");
        let parallel = run_campaign(&cfg, threads).expect("parallel run");
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.to_json(), parallel.to_json());
    }
}
