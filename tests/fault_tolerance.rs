//! Cross-crate differential harness for the fault-injection subsystem.
//!
//! Three layers are pinned against each other:
//!
//! 1. **Oracle pin** — for every catalog cell at n = 3..=5 and every buffer
//!    architecture, a fault-free (dormant) `FaultPlan` exercises the whole
//!    fault machinery yet must reproduce today's engine results bit for
//!    bit; and a single-link fault must never *increase* the delivered
//!    packet count.
//! 2. **Routing vs. graph differential** — for random fault plans, the
//!    fault-aware router (`min-routing::disjoint::route_around`) must agree
//!    pair-by-pair with raw reachability on the damaged MI-digraph
//!    (`min-graph::paths::unique_path` on the arcs that survive), and every
//!    routable pair's chosen path must be verifiably fault-free.
//! 3. **Simulation consistency** — under uniform traffic,
//!    `unroutable_drops` is nonzero exactly when the plan severs some
//!    pair's last path, and conservation holds in every buffer mode.

use baseline_equivalence::prelude::*;
use min_graph::paths::unique_path;
use min_graph::MiDigraph;
use min_routing::path::verify_cell_path;
use min_sim::TrafficPattern;
use proptest::prelude::*;

fn modes() -> [BufferMode; 3] {
    [
        BufferMode::Unbuffered,
        BufferMode::Fifo(4),
        BufferMode::Wormhole {
            lanes: 2,
            lane_depth: 2,
            flits_per_packet: 3,
        },
    ]
}

fn base_config(mode: BufferMode) -> SimConfig {
    SimConfig::default()
        .with_cycles(400, 40)
        .with_seed(0x1988)
        .with_load(0.7)
        .with_buffer(mode)
}

/// The MI-digraph of `net` with the plan's dead links and dead switches
/// removed — the graph-layer ground truth the router is diffed against.
fn damaged_digraph(
    net: &baseline_equivalence::core::ConnectionNetwork,
    digest: &FaultDigest,
) -> MiDigraph {
    let cells = net.cells_per_stage();
    let mut g = MiDigraph::new(net.stages(), cells);
    for s in 0..net.stages() - 1 {
        let conn = net.connection(s);
        for v in 0..cells as u32 {
            if digest.cell_dead(s, v) {
                continue;
            }
            for port in 0..2u8 {
                if digest.link_dead(s, v, port) {
                    continue;
                }
                let to = if port == 0 {
                    conn.f(u64::from(v))
                } else {
                    conn.g(u64::from(v))
                } as u32;
                if digest.cell_dead(s + 1, to) {
                    continue;
                }
                g.add_arc(s, v, to);
            }
        }
    }
    g
}

/// Builds the routing digest of a plan's static (onset-0) dead faults.
fn digest_of(plan: &FaultPlan, stages: usize, cells: usize) -> FaultDigest {
    let mut digest = FaultDigest::new(stages, cells);
    for fault in &plan.faults {
        match fault.kind {
            FaultKind::DeadSwitch { stage, cell } => digest.kill_cell(stage, cell),
            FaultKind::DeadLink { stage, cell, port } => digest.kill_link(stage, cell, port),
            FaultKind::DegradedLink { .. } => {}
        }
    }
    digest
}

#[test]
fn dormant_fault_plans_reproduce_the_engine_bit_for_bit_across_the_catalog() {
    // The dormant plan (every onset beyond the run) builds the runtime, the
    // pair-routing table and the per-cycle views — and must change nothing.
    for n in 3..=5usize {
        let dormant = FaultPlan::none()
            .with_dead_link(1, 0, 1, 1_000_000)
            .with_dead_switch(n - 1, 0, 1_000_000)
            .with_degraded_link(0, 1, 0, 1_000_000);
        for kind in ClassicalNetwork::ALL {
            for mode in modes() {
                let cfg = base_config(mode);
                let clean = simulate(kind.build(n), cfg.clone()).unwrap();
                let pinned =
                    simulate(kind.build(n), cfg.clone().with_faults(FaultPlan::none())).unwrap();
                let dormant_run =
                    simulate(kind.build(n), cfg.with_faults(dormant.clone())).unwrap();
                assert_eq!(clean, pinned, "{kind} n={n} {mode:?}: empty plan");
                assert_eq!(clean, dormant_run, "{kind} n={n} {mode:?}: dormant plan");
            }
        }
    }
}

#[test]
fn single_link_faults_never_increase_delivered_count() {
    // Below saturation, severed traffic is refused at the source and the
    // rest delivers almost losslessly, so a dead link can only cost
    // deliveries. (Past saturation the comparison would be unsound: load
    // shedding famously *raises* the throughput of a saturated fabric,
    // which is exactly the stability effect the Omega-fault literature
    // studies.) The per-mode loads sit safely below each architecture's
    // saturation point — the wormhole's packet capacity is 1/flits.
    for n in 3..=5usize {
        for kind in ClassicalNetwork::ALL {
            for (stage, cell, port) in [(0, 0, 0), (1, 1, 1)] {
                let plan = FaultPlan::none().with_dead_link(stage, cell, port, 0);
                for (mode, load, cycles) in [
                    (BufferMode::Unbuffered, 0.5, 600),
                    (BufferMode::Fifo(4), 0.4, 600),
                    // The wormhole's packet capacity is 1/flits scaled by
                    // lane contention; 0.08 sits at ~40% of it, and the
                    // longer run keeps the severed-traffic gap an order of
                    // magnitude above the run-to-run decoupling noise.
                    (
                        BufferMode::Wormhole {
                            lanes: 2,
                            lane_depth: 2,
                            flits_per_packet: 3,
                        },
                        0.08,
                        4_000,
                    ),
                ] {
                    let cfg = base_config(mode).with_load(load).with_cycles(cycles, 40);
                    let clean = simulate(kind.build(n), cfg.clone()).unwrap();
                    let faulty = simulate(kind.build(n), cfg.with_faults(plan.clone())).unwrap();
                    assert!(
                        faulty.delivered <= clean.delivered,
                        "{kind} n={n} {mode:?} L{stage}.{cell}.{port}: \
                         {} delivered with the fault vs {} without",
                        faulty.delivered,
                        clean.delivered
                    );
                    assert!(
                        faulty.unroutable_drops > 0,
                        "{kind} n={n}: one dead link always severs pairs"
                    );
                }
            }
        }
    }
}

#[test]
fn fault_campaign_reports_are_byte_identical_at_any_thread_count() {
    let plans = vec![
        FaultPlan::none(),
        FaultPlan::none().with_dead_link(1, 0, 1, 0),
        FaultPlan::random_links(0xFA017, 2, 3, 4),
        FaultPlan::none()
            .with_dead_switch(1, 1, 30)
            .with_degraded_link(0, 0, 0, 0),
    ];
    let cfg = CampaignConfig::over_catalog(3..=3)
        .with_loads(vec![0.8])
        .with_buffer_modes(vec![BufferMode::Unbuffered, BufferMode::Fifo(2)])
        .with_fault_plans(plans)
        .with_cycles(120, 20);
    let sequential = run_campaign(&cfg, 1).unwrap();
    let parallel = run_campaign(&cfg, 6).unwrap();
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.to_json(), parallel.to_json());
    // The fault axis is visible in the report: healthy scenarios never
    // refuse injections, faulty ones report their reliability counters.
    assert!(sequential.aggregate.total_unroutable_drops > 0);
    for r in &sequential.scenarios {
        assert_eq!(r.injected, r.delivered + r.dropped + r.in_flight, "{r:?}");
        if r.scenario.fault_plan.is_empty() {
            assert_eq!(r.unroutable_drops, 0);
            assert_eq!(r.dropped_fault, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential: the fault-aware router agrees with raw reachability on
    /// the damaged digraph, pair by pair, and every routable pair's path is
    /// verifiably fault-free — i.e. every still-connected pair really
    /// delivers.
    #[test]
    fn router_and_damaged_digraph_agree_on_every_pair(
        seed in any::<u64>(),
        links in 1usize..4,
        kind_index in 0usize..6,
    ) {
        let net = ClassicalNetwork::ALL[kind_index].build(4);
        let cells = net.cells_per_stage();
        let plan = FaultPlan::random_links(seed, links, net.stages(), cells);
        let digest = digest_of(&plan, net.stages(), cells);
        let damaged = damaged_digraph(&net, &digest);
        for src in 0..cells as u64 {
            for dst in 0..cells as u64 {
                let graph_route = unique_path(&damaged, src as u32, dst as u32);
                match route_around(&net, src, dst, &digest) {
                    FaultRoute::Routed(path) => {
                        prop_assert!(
                            graph_route.is_some(),
                            "{src}->{dst}: router found a path the graph lacks"
                        );
                        prop_assert!(verify_cell_path(&net, &path));
                        prop_assert!(digest.path_ok(&path), "{src}->{dst}: path crosses a fault");
                    }
                    FaultRoute::Unroutable => prop_assert!(
                        graph_route.is_none(),
                        "{src}->{dst}: graph still connects a pair the router severed"
                    ),
                }
            }
        }
    }

    /// Simulation consistency: `unroutable_drops` is nonzero exactly when
    /// the plan severs some pair's last path, and packets are conserved.
    #[test]
    fn unroutable_drops_appear_iff_the_plan_severs_a_pair(
        seed in any::<u64>(),
        links in 0usize..3,
        mode_index in 0usize..3,
    ) {
        let net = omega_net();
        let cells = net.cells_per_stage();
        let plan = FaultPlan::random_links(seed, links, net.stages(), cells);
        let digest = digest_of(&plan, net.stages(), cells);
        let severed = (0..cells as u64)
            .flat_map(|s| (0..cells as u64).map(move |d| (s, d)))
            .filter(|&(s, d)| !route_around(&net, s, d, &digest).is_routable())
            .count();
        let cfg = base_config(modes()[mode_index])
            .with_traffic(TrafficPattern::Uniform)
            .with_load(0.9)
            .with_faults(plan);
        let m = simulate(net, cfg).unwrap();
        prop_assert!(
            (m.unroutable_drops == 0) == (severed == 0),
            "unroutable_drops {} vs {} severed pairs", m.unroutable_drops, severed
        );
        prop_assert!(m.delivered > 0);
        prop_assert_eq!(
            m.injected,
            m.delivered + m.dropped_arbitration + m.dropped_backpressure
                + m.dropped_fault + m.in_flight_at_end
        );
    }
}

fn omega_net() -> baseline_equivalence::core::ConnectionNetwork {
    baseline_equivalence::networks::omega(4)
}
