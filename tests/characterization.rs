//! Experiment E6 — the Section 2 characterization theorem, end to end.
//!
//! Banyan + P(1,*) + P(*,n) ⇒ isomorphic to the Baseline MI-digraph, and the
//! isomorphism produced by the constructive algorithm is verified arc by arc.

use baseline_equivalence::prelude::*;
use min_core::properties::{characterization_report, p_one_star, p_property, p_star_n};
use min_graph::components::component_count_range;
use min_graph::paths::is_banyan;

#[test]
fn p_counts_match_the_papers_formula_on_the_baseline() {
    // P(i,j): (G)_{i,j} has exactly 2^{n-1-(j-i)} components.
    for n in 2..=8 {
        let g = baseline_digraph(n);
        for i in 0..n {
            for j in i..n {
                let expected = 1usize << (n - 1 - (j - i));
                assert_eq!(
                    component_count_range(&g, i, j),
                    expected,
                    "P({},{}) at n={n}",
                    i + 1,
                    j + 1
                );
                assert!(p_property(&g, i, j));
            }
        }
    }
}

#[test]
fn the_characterization_holds_for_every_catalog_network() {
    for n in 2..=7 {
        for kind in ClassicalNetwork::ALL {
            let g = kind.build(n).to_digraph();
            let report = characterization_report(&g);
            assert!(report.proper_shape, "{kind} n={n}");
            assert!(report.banyan, "{kind} n={n}");
            assert!(report.p_one_star(), "{kind} n={n}");
            assert!(report.p_star_n(), "{kind} n={n}");
            let cert = baseline_isomorphism(&g).unwrap_or_else(|e| panic!("{kind} n={n}: {e}"));
            assert!(cert.verify(&g), "{kind} n={n}");
        }
    }
}

#[test]
fn the_three_hypotheses_are_independent_of_each_other() {
    // (a) Banyan fails, P-properties may hold: the Fig. 5 network.
    let fig5 = min_networks::counterexample::fig5_network(4).to_digraph();
    assert!(!is_banyan(&fig5));

    // (b) Banyan holds, P(1,*) fails: the deterministic counterexample.
    let ce = min_networks::counterexample::banyan_not_baseline_equivalent().to_digraph();
    assert!(is_banyan(&ce));
    assert!(!p_one_star(&ce));

    // (c) Its reverse is Banyan with P(*,n) failing instead.
    let rev = ce.reverse();
    assert!(is_banyan(&rev));
    assert!(!p_star_n(&rev));
    assert!(baseline_isomorphism(&rev).is_err());
}

#[test]
fn certificates_survive_arbitrary_relabelling() {
    // Relabelling the nodes of an equivalent network (an isomorphic copy)
    // cannot change the verdict, and the new certificate must still verify.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5EED);
    for n in 2..=6 {
        let g = networks::omega(n).to_digraph();
        let mapping: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut m: Vec<u32> = (0..g.width() as u32).collect();
                m.shuffle(&mut rng);
                m
            })
            .collect();
        let h = g.relabel(&mapping);
        assert!(satisfies_characterization(&h), "n={n}");
        let cert = baseline_isomorphism(&h).expect("still equivalent");
        assert!(cert.verify(&h), "n={n}");
    }
}

#[test]
fn scaling_sanity_the_constructive_algorithm_handles_large_networks() {
    // n = 12 means 2^11 = 2048 cells per stage and 45 056 arcs; the
    // near-linear algorithm should handle it comfortably inside a unit test.
    let n = 12;
    let g = networks::omega(n).to_digraph();
    let cert = baseline_isomorphism(&g).expect("omega is equivalent at any size");
    assert_eq!(cert.mapping.len(), n);
    assert!(cert.verify(&g));
}
