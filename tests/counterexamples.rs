//! Experiment E10 — what the weaker properties fail to capture.

use baseline_equivalence::prelude::*;
use min_core::buddy::{buddy_property, reverse_buddy_property};
use min_core::error::EquivalenceError;
use min_core::properties::characterization_report;
use min_graph::iso::{find_isomorphism, IsoSearchOutcome};
use min_graph::paths::is_banyan;
use min_networks::counterexample::{
    banyan_not_baseline_equivalent, buddy_not_baseline_equivalent, fig5_network,
};

#[test]
fn banyan_alone_does_not_imply_equivalence() {
    let net = banyan_not_baseline_equivalent();
    let g = net.to_digraph();
    assert!(net.is_proper());
    assert!(is_banyan(&g));
    // The constructive algorithm refuses with a precise P-property diagnosis…
    match baseline_isomorphism(&g) {
        Err(EquivalenceError::PrefixComponentCount {
            stage,
            expected,
            actual,
        }) => {
            assert_eq!(stage, 1);
            assert_eq!(expected, 2);
            assert_eq!(actual, 1);
        }
        other => panic!("expected a prefix component diagnosis, got {other:?}"),
    }
    // …and the exhaustive search confirms there is no isomorphism at all.
    assert_eq!(
        find_isomorphism(&g, &baseline_digraph(g.stages()), 100_000_000),
        IsoSearchOutcome::NotIsomorphic
    );
}

#[test]
fn buddy_plus_banyan_does_not_imply_equivalence() {
    // The gap in Agrawal's characterization pointed out by reference [10].
    let net = buddy_not_baseline_equivalent();
    let g = net.to_digraph();
    assert!(is_banyan(&g));
    assert!(buddy_property(&g).holds);
    assert!(reverse_buddy_property(&g).holds);
    assert!(baseline_isomorphism(&g).is_err());
    let report = characterization_report(&g);
    assert!(!report.p_one_star() || !report.p_star_n());
}

#[test]
fn all_classical_networks_nevertheless_satisfy_the_buddy_property() {
    // Buddy is necessary, just not sufficient.
    for n in 2..=6 {
        for kind in ClassicalNetwork::ALL {
            let g = kind.build(n).to_digraph();
            assert!(buddy_property(&g).holds, "{kind} n={n}");
            assert!(reverse_buddy_property(&g).holds, "{kind} n={n}");
        }
    }
}

#[test]
fn the_fig5_degeneracy_is_detected_at_every_size() {
    for n in 2..=6 {
        let g = fig5_network(n).to_digraph();
        assert!(g.has_parallel_arcs(), "n={n}");
        assert!(!is_banyan(&g), "n={n}");
        assert!(baseline_isomorphism(&g).is_err(), "n={n}");
    }
}

#[test]
fn counterexamples_are_not_equivalent_to_each_other_either() {
    // A labelled sanity check: being "not Baseline-equivalent" is not a
    // single equivalence class — the two counterexamples have different
    // sizes and are trivially non-equivalent, and comparing them reports a
    // shape mismatch rather than a crash.
    let a = banyan_not_baseline_equivalent().to_digraph();
    let b = buddy_not_baseline_equivalent().to_digraph();
    assert_eq!(
        equivalence_mapping(&a, &b),
        Err(EquivalenceError::ShapeMismatch)
    );
}
