//! Experiments E11 and E12 (routing half) — bidelta property, self-routing
//! and admissibility parity across the catalog.

use baseline_equivalence::prelude::*;
use min_core::delta::{is_bidelta, is_delta};
use min_routing::analysis::{admissibility_exhaustive, admissibility_monte_carlo};
use min_routing::path::route_terminals;
use min_routing::permutation_routing::{is_admissible, permutation_conflicts};
use min_routing::tag::{destination_tags, verify_self_routing};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn every_catalog_network_is_bidelta_and_self_routing() {
    for n in 2..=6 {
        for kind in ClassicalNetwork::ALL {
            let net = kind.build(n);
            assert!(is_delta(&net), "{kind} n={n} delta");
            assert!(is_bidelta(&net), "{kind} n={n} bidelta");
            assert!(verify_self_routing(&net), "{kind} n={n} self-routing");
        }
    }
}

#[test]
fn tags_and_unique_paths_agree() {
    // The destination-tag route and the unique Banyan path must be the same
    // path, for every source/destination pair.
    let net = networks::indirect_binary_cube(4);
    let table = destination_tags(&net).unwrap();
    for src in 0..8u64 {
        for dst in 0..8u64 {
            let tag = u64::from(table.tag_of_destination[dst as usize]);
            let path = route_terminals(&net, src * 2, dst * 2).unwrap().path;
            for (s, &port) in path.ports.iter().enumerate() {
                assert_eq!(
                    u64::from(port),
                    (tag >> s) & 1,
                    "src={src} dst={dst} stage={s}"
                );
            }
        }
    }
}

#[test]
fn admissible_counts_coincide_across_equivalent_networks() {
    // Exhaustive census at N = 8: all six networks pass exactly the same
    // number of the 40 320 permutations.
    let counts: Vec<u64> = ClassicalNetwork::ALL
        .iter()
        .map(|k| admissibility_exhaustive(&k.build(3)).admissible)
        .collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    // The non-equivalent Banyan counterexample is *also* a 3-stage Banyan
    // network, so it realizes exactly 2^(#switch-choices) circuits as well;
    // the census machinery runs on it without issue.
    let ce = min_networks::counterexample::banyan_not_baseline_equivalent();
    let ce_count = admissibility_exhaustive(&ce).admissible;
    assert!(ce_count > 0);
}

#[test]
fn monte_carlo_and_exhaustive_censuses_agree_on_omega() {
    let net = networks::omega(3);
    let exact = admissibility_exhaustive(&net);
    let mut rng = ChaCha8Rng::seed_from_u64(0xAD_317);
    let estimate = admissibility_monte_carlo(&net, 6_000, &mut rng);
    assert!(!estimate.exhaustive);
    assert!((estimate.fraction() - exact.fraction()).abs() < 0.04);
}

#[test]
fn conflict_reports_are_consistent_with_admissibility() {
    use rand::seq::SliceRandom;
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0);
    let net = networks::flip(4);
    let n = net.terminals() as u64;
    for _ in 0..50 {
        let mut perm: Vec<u64> = (0..n).collect();
        perm.shuffle(&mut rng);
        let report = permutation_conflicts(&net, &perm);
        assert_eq!(report.admissible, is_admissible(&net, &perm));
        assert_eq!(report.circuits, n as usize);
        if report.admissible {
            assert_eq!(report.conflicting_links, 0);
            assert_eq!(report.max_link_load, 1);
        } else {
            assert!(report.max_link_load >= 2);
            assert!(report.example_conflict.is_some());
        }
    }
}
