//! Experiment E9 — the six classical networks are pairwise equivalent
//! (the paper's headline corollary), with explicit verified mappings, and
//! cross-validated against the exhaustive isomorphism search at small sizes.

use baseline_equivalence::prelude::*;
use min_graph::iso::{find_isomorphism, verify_stage_mapping, IsoSearchOutcome};

#[test]
fn all_pairs_are_equivalent_with_verified_mappings() {
    for n in 2..=6 {
        let digraphs: Vec<_> = ClassicalNetwork::ALL
            .iter()
            .map(|k| (k, k.build(n).to_digraph()))
            .collect();
        for (ka, ga) in &digraphs {
            for (kb, gb) in &digraphs {
                let mapping = equivalence_mapping(ga, gb)
                    .unwrap_or_else(|e| panic!("{ka} vs {kb} at n={n}: {e}"));
                assert!(
                    verify_stage_mapping(ga, gb, &mapping),
                    "{ka} vs {kb} at n={n}"
                );
            }
        }
    }
}

#[test]
fn constructive_equivalence_agrees_with_exhaustive_search_at_n3() {
    let n = 3;
    let digraphs: Vec<_> = ClassicalNetwork::ALL
        .iter()
        .map(|k| k.build(n).to_digraph())
        .collect();
    for a in &digraphs {
        for b in &digraphs {
            let outcome = find_isomorphism(a, b, 10_000_000);
            assert!(matches!(outcome, IsoSearchOutcome::Found(_)));
        }
    }
}

#[test]
fn every_catalog_network_is_built_from_nondegenerate_pipids() {
    // §4: the corollary applies because each network is designed from PIPID
    // permutations whose critical digit is non-zero.
    for n in 2..=6 {
        for kind in ClassicalNetwork::ALL {
            for theta in kind.thetas(n) {
                assert_ne!(
                    theta.theta_inv(0),
                    0,
                    "{kind} n={n} uses a degenerate PIPID stage"
                );
            }
        }
    }
}

#[test]
fn equivalence_certificates_compose_transitively() {
    // (Omega -> Baseline) ∘ (Baseline -> Flip) must equal a valid
    // Omega -> Flip mapping (not necessarily the same one the direct call
    // produces, but a verified one).
    let n = 5;
    let omega = networks::omega(n).to_digraph();
    let baseline = networks::baseline(n).to_digraph();
    let flip = networks::flip(n).to_digraph();
    let a = equivalence_mapping(&omega, &baseline).unwrap();
    let b = equivalence_mapping(&baseline, &flip).unwrap();
    let composed = min_graph::iso::compose_mappings(&a, &b);
    assert!(verify_stage_mapping(&omega, &flip, &composed));
}

#[test]
fn wu_and_feng_style_mapping_is_stage_respecting_and_bijective() {
    let n = 6;
    let omega = networks::omega(n).to_digraph();
    let baseline = baseline_digraph(n);
    let mapping = equivalence_mapping(&omega, &baseline).unwrap();
    assert_eq!(mapping.len(), n);
    for stage_map in &mapping {
        let mut seen = vec![false; stage_map.len()];
        for &img in stage_map {
            assert!(!seen[img as usize]);
            seen[img as usize] = true;
        }
    }
}
