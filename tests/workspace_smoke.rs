//! Workspace smoke test: the facade prelude round-trip promised by the
//! `src/lib.rs` doc example, swept across the whole classical catalog.
//!
//! This is the one test a fresh checkout should reach for first: it exercises
//! every workspace layer (labels → graph → core → networks → routing) through
//! the `baseline_equivalence::prelude` alone, exactly the way an application
//! would.

use baseline_equivalence::prelude::*;

/// The doc example from `src/lib.rs`, kept verbatim so the facade's front
/// door never silently drifts from what the documentation shows.
#[test]
fn the_quickstart_example_works_as_documented() {
    let omega = networks::omega(4);
    let cert = core::baseline_isomorphism(&omega.to_digraph()).unwrap();
    assert!(cert.verify(&omega.to_digraph()));
    assert!(omega.connections().iter().all(core::is_independent));
    assert!(core::is_delta(&omega));
}

/// Every classical network at n = 3..=5: built through the prelude, certified
/// Baseline-equivalent, and delta exactly when the characterization holds.
#[test]
fn catalog_round_trip_through_the_prelude() {
    for n in 3..=5 {
        for kind in ClassicalNetwork::ALL {
            let net = kind.build(n);
            let g: MiDigraph = net.to_digraph();

            // §2: the characterization theorem holds for the whole catalog…
            assert!(
                satisfies_characterization(&g),
                "{kind} n={n} fails the characterization"
            );

            // …§3: with a constructive, verified isomorphism certificate…
            let cert = baseline_isomorphism(&g)
                .unwrap_or_else(|e| panic!("{kind} n={n}: no certificate: {e}"));
            assert!(cert.verify(&g), "{kind} n={n}: certificate fails to verify");

            // …§3: every stage an independent connection…
            assert!(
                net.connections().iter().all(is_independent),
                "{kind} n={n} has a dependent stage"
            );

            // …§4: and destination-tag routability agrees with the
            // characterization (every PIPID-built network is delta).
            assert_eq!(
                core::is_delta(&net),
                satisfies_characterization(&g),
                "{kind} n={n}: is_delta disagrees with satisfies_characterization"
            );
        }
    }
}

/// The prelude exposes the label algebra too; `equivalence_mapping` composes
/// certificates into an explicit network-to-network mapping.
#[test]
fn prelude_exposes_labels_and_equivalence_mapping() {
    let theta = IndexPermutation::perfect_shuffle(4);
    assert_eq!(theta.width(), 4);

    let a = networks::omega(3).to_digraph();
    let b = networks::flip(3).to_digraph();
    let mapping = equivalence_mapping(&a, &b).expect("catalog networks are equivalent");
    assert!(graph::verify_stage_mapping(&a, &b, &mapping));
}
