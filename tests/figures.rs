//! Experiments E1–E3 — structural regeneration of the paper's Figures 1–3.

use baseline_equivalence::prelude::*;
use min_graph::components::component_ids_range;
use min_graph::dot::{to_dot, DotOptions};
use min_labels::gf2::format_tuple;

#[test]
fn figure1_the_four_stage_baseline_has_the_drawn_structure() {
    // Fig. 1 shows the N = 16 (4-stage) Baseline network: 8 cells per stage,
    // 4 stages, left-recursive halving after the first stage.
    let g = networks::baseline(4).to_digraph();
    assert_eq!(g.stages(), 4);
    assert_eq!(g.width(), 8);
    assert_eq!(g.arc_count(), 3 * 16);
    // Stage-1 cells 2i and 2i+1 connect to cell i of the two subnetworks.
    for i in 0..4u32 {
        for &v in &[2 * i, 2 * i + 1] {
            let mut kids = g.children(0, v).to_vec();
            kids.sort_unstable();
            assert_eq!(kids, vec![i, i + 4]);
        }
    }
    // The two subnetworks between stages 2 and 4 are disjoint 3-stage
    // Baseline networks.
    let rc = component_ids_range(&g, 1, 3);
    assert_eq!(rc.count, 2);
    let top = g.slice(1, 3);
    assert!(min_core::satisfies_characterization(&top) || top.stages() == 3);
}

#[test]
fn figure1_dot_rendering_contains_every_cell() {
    let g = networks::baseline(4).to_digraph();
    let dot = to_dot(
        &g,
        &DotOptions {
            name: "Fig1".into(),
            binary_labels: None,
            undirected_style: true,
        },
    );
    for s in 0..4 {
        for v in 0..8 {
            assert!(dot.contains(&format!("s{s}_n{v} ")), "missing node {s}/{v}");
        }
    }
    assert_eq!(dot.matches(" -> ").count(), 48);
}

#[test]
fn figure2_labels_are_the_papers_tuples() {
    // Fig. 2 labels each cell of a 4-stage MI-digraph with a 3-tuple.
    let width = 3;
    assert_eq!(format_tuple(0, width), "(0,0,0)");
    assert_eq!(format_tuple(0b001, width), "(0,0,1)");
    assert_eq!(format_tuple(0b110, width), "(1,1,0)");
    assert_eq!(format_tuple(0b111, width), "(1,1,1)");
    let g = networks::baseline(4).to_digraph();
    let dot = to_dot(
        &g,
        &DotOptions {
            name: "Fig2".into(),
            binary_labels: Some(width),
            undirected_style: true,
        },
    );
    assert!(dot.contains("(0,0,0)"));
    assert!(dot.contains("(1,1,1)"));
}

#[test]
fn figure3_component_construction_matches_lemma2() {
    // Fig. 3 illustrates the induction of Lemma 2: a component of (G)_{j,n}
    // meets every stage i ≥ j in 2^{n-1-j} nodes (0-based j), and the buddy
    // set B_j is a translated set of A_j.
    let n = 5;
    let g = networks::omega(n).to_digraph();
    for j in 0..n {
        let rc = component_ids_range(&g, j, n - 1);
        assert_eq!(rc.count, 1 << j);
        for i in j..n {
            let sizes = rc.stage_intersection_sizes(i);
            assert!(sizes.iter().all(|&s| s == g.width() >> j));
        }
    }
    // Translated-set structure of the first split: the two components of
    // (G)_{2,n} restricted to stage 2 are cosets of each other.
    let rc = component_ids_range(&g, 1, n - 1);
    let members = rc.members();
    let stage1_a: Vec<u64> = members[0]
        .iter()
        .filter(|(s, _)| *s == 1)
        .map(|&(_, v)| u64::from(v))
        .collect();
    let stage1_b: Vec<u64> = members[1]
        .iter()
        .filter(|(s, _)| *s == 1)
        .map(|&(_, v)| u64::from(v))
        .collect();
    assert!(min_labels::gf2::is_translate_of(&stage1_a, &stage1_b));
}
