//! Experiment E12 (simulation half) — equivalent topologies behave alike,
//! plus conservation-law property tests for the simulator itself, across all
//! three switching cores (unbuffered, FIFO, multi-lane wormhole).

use baseline_equivalence::prelude::*;
use min_sim::{simulate, BufferMode, SimConfig, Simulator, TrafficPattern};
use proptest::prelude::*;

#[test]
fn all_catalog_networks_have_statistically_equal_uniform_throughput() {
    let n = 4;
    let terminals = 1usize << n;
    let cfg = SimConfig::default()
        .with_load(0.9)
        .with_cycles(2_000, 0)
        .with_seed(0x1988);
    let throughputs: Vec<f64> = ClassicalNetwork::ALL
        .iter()
        .map(|k| {
            simulate(k.build(n), cfg.clone())
                .expect("catalog networks are delta")
                .normalized_throughput(terminals)
        })
        .collect();
    let max = throughputs.iter().cloned().fold(f64::MIN, f64::max);
    let min = throughputs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.08,
        "throughput spread too large: {throughputs:?}"
    );
    // And in the right ballpark for a 4-stage unbuffered delta network
    // (Patel's recurrence gives ≈ 0.52 at full load; at 0.9 offered load the
    // value sits slightly lower than the offered rate).
    assert!(min > 0.35 && max < 0.75, "{throughputs:?}");
}

#[test]
fn throughput_is_monotone_in_offered_load() {
    let n = 5;
    let terminals = 1usize << n;
    let mut last = 0.0;
    for &load in &[0.2, 0.5, 0.8, 1.0] {
        let cfg = SimConfig::default().with_load(load).with_cycles(1_500, 0);
        let t = simulate(networks::omega(n), cfg)
            .unwrap()
            .normalized_throughput(terminals);
        assert!(
            t + 0.02 >= last,
            "throughput decreased from {last} to {t} at load {load}"
        );
        last = t;
    }
}

#[test]
fn permutation_traffic_on_an_admissible_pattern_is_lossless_when_buffered() {
    // Cell-level bit-reversal traffic through the buffered cube network: a
    // fixed pattern with one packet stream per source; with FIFOs and
    // moderate load nothing is dropped inside the fabric.
    let n = 4;
    let cfg = SimConfig::default()
        .with_load(0.6)
        .with_cycles(1_000, 0)
        .with_buffer(BufferMode::Fifo(8))
        .with_traffic(TrafficPattern::BitReversal);
    let m = simulate(networks::indirect_binary_cube(n), cfg).unwrap();
    assert_eq!(m.dropped(), 0);
    assert_eq!(m.misrouted, 0);
    assert!(m.delivered > 0);
}

#[test]
fn wormhole_sweeps_behave_alike_across_equivalent_topologies() {
    // The behavioural-interchangeability claim extends to flit-level
    // wormhole switching: equivalent fabrics under symmetric traffic have
    // statistically indistinguishable wormhole throughput.
    let n = 4;
    let terminals = 1usize << n;
    let cfg = SimConfig::default()
        .with_load(0.9)
        .with_cycles(2_000, 0)
        .with_buffer(BufferMode::Wormhole {
            lanes: 2,
            lane_depth: 4,
            flits_per_packet: 4,
        });
    let a = simulate(networks::omega(n), cfg.clone())
        .unwrap()
        .normalized_throughput(terminals);
    let b = simulate(networks::baseline(n), cfg)
        .unwrap()
        .normalized_throughput(terminals);
    let rel = (a - b).abs() / a.max(b);
    assert!(
        rel < 0.10,
        "wormhole throughputs {a} vs {b} differ by {rel}"
    );
}

/// The three switching cores stressed by the conservation proptests.
fn buffer_mode(index: usize) -> BufferMode {
    [
        BufferMode::Unbuffered,
        BufferMode::Fifo(2),
        BufferMode::Wormhole {
            lanes: 2,
            lane_depth: 2,
            flits_per_packet: 3,
        },
    ][index]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and sanity of the metrics hold for arbitrary loads,
    /// seeds, buffer modes and catalog networks.
    #[test]
    fn conservation_holds_for_arbitrary_configurations(
        seed in any::<u64>(),
        load in 0.05f64..1.0,
        mode_idx in 0usize..3,
        kind_idx in 0usize..6,
    ) {
        let kind = ClassicalNetwork::ALL[kind_idx];
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_load(load)
            .with_cycles(300, 0)
            .with_buffer(buffer_mode(mode_idx));
        let m = simulate(kind.build(3), cfg).unwrap();
        prop_assert_eq!(m.misrouted, 0);
        prop_assert!(m.offered >= m.injected);
        prop_assert_eq!(m.injected, m.delivered + m.dropped() + m.in_flight_at_end);
        if mode_idx != 0 {
            // FIFO backpressure and wormhole lane-holding never drop.
            prop_assert_eq!(m.dropped(), 0);
        }
    }

    /// Packet conservation holds **after every cycle**, not just at the end
    /// of a run: stepping the simulator one cycle at a time, the ledger
    /// `injected = delivered + dropped + in-flight` balances at every cycle
    /// boundary, across all three buffer modes and the whole classical
    /// catalog at n = 3..=5.
    #[test]
    fn conservation_holds_after_every_cycle(
        seed in any::<u64>(),
        load in 0.05f64..1.0,
        mode_idx in 0usize..3,
        kind_idx in 0usize..6,
        n in 3usize..=5,
    ) {
        let kind = ClassicalNetwork::ALL[kind_idx];
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_load(load)
            .with_cycles(120, 0)
            .with_buffer(buffer_mode(mode_idx));
        let mut sim = Simulator::new(kind.build(n), cfg).unwrap();
        for _cycle in 0..120u64 {
            sim.step();
            let m = sim.metrics();
            prop_assert_eq!(m.injected, m.delivered + m.dropped() + sim.in_flight());
            prop_assert_eq!(m.in_flight_at_end, sim.in_flight());
        }
    }
}
