//! Experiment E12 (simulation half) — equivalent topologies behave alike,
//! plus conservation-law property tests for the simulator itself.

use baseline_equivalence::prelude::*;
use min_sim::{simulate, BufferMode, SimConfig, TrafficPattern};
use proptest::prelude::*;

#[test]
fn all_catalog_networks_have_statistically_equal_uniform_throughput() {
    let n = 4;
    let terminals = 1usize << n;
    let cfg = SimConfig::default()
        .with_load(0.9)
        .with_cycles(2_000, 0)
        .with_seed(0x1988);
    let throughputs: Vec<f64> = ClassicalNetwork::ALL
        .iter()
        .map(|k| {
            simulate(k.build(n), cfg.clone())
                .expect("catalog networks are delta")
                .normalized_throughput(terminals)
        })
        .collect();
    let max = throughputs.iter().cloned().fold(f64::MIN, f64::max);
    let min = throughputs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.08,
        "throughput spread too large: {throughputs:?}"
    );
    // And in the right ballpark for a 4-stage unbuffered delta network
    // (Patel's recurrence gives ≈ 0.52 at full load; at 0.9 offered load the
    // value sits slightly lower than the offered rate).
    assert!(min > 0.35 && max < 0.75, "{throughputs:?}");
}

#[test]
fn throughput_is_monotone_in_offered_load() {
    let n = 5;
    let terminals = 1usize << n;
    let mut last = 0.0;
    for &load in &[0.2, 0.5, 0.8, 1.0] {
        let cfg = SimConfig::default().with_load(load).with_cycles(1_500, 0);
        let t = simulate(networks::omega(n), cfg)
            .unwrap()
            .normalized_throughput(terminals);
        assert!(
            t + 0.02 >= last,
            "throughput decreased from {last} to {t} at load {load}"
        );
        last = t;
    }
}

#[test]
fn permutation_traffic_on_an_admissible_pattern_is_lossless_when_buffered() {
    // Cell-level bit-reversal traffic through the buffered cube network: a
    // fixed pattern with one packet stream per source; with FIFOs and
    // moderate load nothing is dropped inside the fabric.
    let n = 4;
    let cfg = SimConfig::default()
        .with_load(0.6)
        .with_cycles(1_000, 0)
        .with_buffer(BufferMode::Fifo(8))
        .with_traffic(TrafficPattern::BitReversal);
    let m = simulate(networks::indirect_binary_cube(n), cfg).unwrap();
    assert_eq!(m.dropped, 0);
    assert_eq!(m.misrouted, 0);
    assert!(m.delivered > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and sanity of the metrics hold for arbitrary loads,
    /// seeds, buffer modes and catalog networks.
    #[test]
    fn conservation_holds_for_arbitrary_configurations(
        seed in any::<u64>(),
        load in 0.05f64..1.0,
        buffered in any::<bool>(),
        kind_idx in 0usize..6,
    ) {
        let kind = ClassicalNetwork::ALL[kind_idx];
        let cfg = SimConfig::default()
            .with_seed(seed)
            .with_load(load)
            .with_cycles(300, 0)
            .with_buffer(if buffered { BufferMode::Fifo(2) } else { BufferMode::Unbuffered });
        let m = simulate(kind.build(3), cfg).unwrap();
        prop_assert_eq!(m.misrouted, 0);
        prop_assert!(m.offered >= m.injected);
        prop_assert_eq!(m.injected, m.delivered + m.dropped + m.in_flight_at_end);
        if buffered {
            prop_assert_eq!(m.dropped, 0);
        }
    }
}
