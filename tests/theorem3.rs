//! Experiments E3, E7, E8 — Lemma 2, Proposition 1 and Theorem 3 on random
//! instances (property-based).

use baseline_equivalence::prelude::*;
use min_core::affine_form::{affine_form, random_proper_independent_connection};
use min_core::independence::{is_independent, is_independent_naive};
use min_core::reverse::reverse_connection;
use min_graph::components::component_ids_range;
use min_graph::paths::is_banyan;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a proper independent connection on `width` bits, described by a
/// seed so shrinking stays meaningful.
fn proper_connection(width: usize) -> impl Strategy<Value = Connection> {
    (any::<u64>(), any::<bool>()).prop_map(move |(seed, bijective)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random_proper_independent_connection(width, bijective, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast (basis) independence check agrees with the definitional one,
    /// and independence is equivalent to the affine form existing.
    #[test]
    fn independence_checkers_agree(conn in proper_connection(4)) {
        prop_assert!(is_independent_naive(&conn));
        prop_assert!(is_independent(&conn));
        prop_assert!(affine_form(&conn).is_some());
    }

    /// Proposition 1: the reverse of a proper independent connection is an
    /// independent connection describing exactly the reversed arcs.
    #[test]
    fn proposition1_reverse_is_independent(conn in proper_connection(4)) {
        let rev = reverse_connection(&conn).expect("proper independent connections reverse");
        prop_assert!(is_independent(&rev));
        // The reverse's reverse describes the original arcs again.
        let back = reverse_connection(&rev).expect("the reverse is proper too");
        for x in 0..conn.cells() as u64 {
            let mut kids: Vec<u64> = vec![conn.f(x), conn.g(x)];
            kids.sort_unstable();
            let mut parents_of_x: Vec<u64> = vec![back.f(x), back.g(x)];
            parents_of_x.sort_unstable();
            prop_assert_eq!(kids.len(), 2);
            prop_assert_eq!(parents_of_x.len(), 2);
        }
    }

    /// Composing independent stages and keeping only the Banyan outcomes
    /// always yields a Baseline-equivalent network (Theorem 3), with a
    /// verified certificate.
    #[test]
    fn theorem3_banyan_plus_independent_implies_equivalent(
        seeds in proptest::collection::vec(any::<u64>(), 3),
        flags in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let width = 3usize;
        let connections: Vec<Connection> = seeds
            .iter()
            .zip(flags.iter())
            .map(|(&s, &b)| {
                let mut rng = ChaCha8Rng::seed_from_u64(s);
                random_proper_independent_connection(width, b, &mut rng)
            })
            .collect();
        let net = ConnectionNetwork::new(width, connections);
        let g = net.to_digraph();
        if is_banyan(&g) {
            let cert = baseline_isomorphism(&g).expect("Theorem 3");
            prop_assert!(cert.verify(&g));
        } else {
            // Not covered by Theorem 3; nothing to assert beyond sanity.
            prop_assert!(net.is_proper());
        }
    }
}

#[test]
fn lemma2_component_structure_on_independent_banyan_networks() {
    // Lemma 2's induction invariant, checked directly: in a Banyan network
    // built from independent connections, every component of (G)_{j,n}
    // intersects every stage i >= j in exactly 2^{n-1-j} ... i.e. in equally
    // many nodes (and the counts match P(*, n)).
    let mut rng = ChaCha8Rng::seed_from_u64(0x1e44);
    let mut checked = 0;
    for _ in 0..30 {
        let Some(net) = min_networks::random::random_independent_banyan(4, 50, &mut rng) else {
            continue;
        };
        let g = net.to_digraph();
        let n = g.stages();
        for j in 0..n {
            let rc = component_ids_range(&g, j, n - 1);
            assert_eq!(rc.count, 1usize << j, "P({},{n}) count", j + 1);
            for i in j..n {
                let sizes = rc.stage_intersection_sizes(i);
                let expected = g.width() >> j;
                assert!(
                    sizes.iter().all(|&s| s == expected),
                    "component of (G)_{{{},{}}} meets stage {} unevenly: {sizes:?}",
                    j + 1,
                    n,
                    i + 1
                );
            }
        }
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected several Banyan samples, got {checked}"
    );
}

#[test]
fn constant_difference_observation_from_lemma2() {
    // "as the connection (f,g) is independent, f(x) ⊕ g(x) = f(y) ⊕ g(y)":
    // holds for every stage of every catalog network.
    for n in 2..=6 {
        for kind in ClassicalNetwork::ALL {
            for conn in kind.build(n).connections() {
                assert!(conn.constant_difference().is_some(), "{kind} n={n}");
            }
        }
    }
}
