//! Experiments E4 and E5 — the PIPID machinery of Section 4.

use baseline_equivalence::prelude::*;
use min_core::independence::is_independent;
use min_core::pipid::connection_from_pipid;
use min_graph::paths::is_banyan;
use min_labels::Permutation;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arbitrary_theta(width: usize) -> impl Strategy<Value = IndexPermutation> {
    any::<u64>().prop_map(move |seed| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        IndexPermutation::random(width, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// E4: every PIPID stage induces an independent connection, and the
    /// connection derived via the link-permutation table agrees with the
    /// θ-based derivation.
    #[test]
    fn pipid_stages_are_independent(theta in arbitrary_theta(5)) {
        let stage = connection_from_pipid(&theta);
        prop_assert!(is_independent(&stage.connection));
        let via_table = Connection::from_link_permutation(&Permutation::from_index_perm(&theta));
        prop_assert_eq!(&stage.connection, &via_table);
    }

    /// E5: a PIPID stage has parallel links exactly when its critical digit
    /// is zero, and exactly then it cannot take part in a Banyan network.
    #[test]
    fn critical_digit_controls_degeneracy(theta in arbitrary_theta(4)) {
        let stage = connection_from_pipid(&theta);
        prop_assert_eq!(stage.degenerate, stage.critical_digit == 0);
        prop_assert_eq!(stage.connection.has_parallel_links(), stage.degenerate);
        if stage.degenerate {
            // Splice the degenerate stage into an otherwise healthy network:
            // the Banyan property must fail.
            let healthy = connection_from_pipid(&IndexPermutation::perfect_shuffle(4)).connection;
            let net = ConnectionNetwork::new(3, vec![healthy.clone(), healthy, stage.connection]);
            prop_assert!(!is_banyan(&net.to_digraph()));
        }
    }

    /// Banyan networks assembled from random non-degenerate PIPID stages are
    /// always Baseline-equivalent (the §4 corollary in its general form).
    #[test]
    fn random_pipid_banyan_networks_are_equivalent(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = min_networks::random::random_pipid_network(4, &mut rng);
        let g = net.to_digraph();
        if is_banyan(&g) {
            let cert = baseline_isomorphism(&g).expect("corollary of Theorem 3");
            prop_assert!(cert.verify(&g));
        }
    }
}

#[test]
fn pipid_detection_recovers_the_stage_permutations_of_the_catalog() {
    for n in 2..=6 {
        for kind in ClassicalNetwork::ALL {
            for theta in kind.thetas(n) {
                let table = Permutation::from_index_perm(&theta);
                assert_eq!(table.as_pipid().as_ref(), Some(&theta), "{kind} n={n}");
            }
        }
    }
}

#[test]
fn shuffle_powers_generate_the_expected_subgroup() {
    // The perfect shuffle has order n: composing n shuffles is the identity,
    // which is why the Omega network's "extra" input shuffle is irrelevant
    // to its MI-digraph topology.
    for n in 2..=8 {
        let sigma = IndexPermutation::perfect_shuffle(n);
        assert_eq!(sigma.order(), n);
        let mut acc = IndexPermutation::identity(n);
        for _ in 0..n {
            acc = acc.compose(&sigma);
        }
        assert!(acc.is_identity());
    }
}
